"""A sharded Byzantine-tolerant key-value service.

:class:`ShardedKVStore` consistent-hashes keys across ``num_shards``
shard groups, each one an independent :class:`~repro.service.store.
MultiRegisterStore` (its own replica set, its own fault budget ``t``/``b``).
Keys are SWMR regular registers; the API speaks dictionary (``put``/
``get``, ``None`` for missing keys) and maps straight onto register
writes and reads underneath.

Capacity therefore scales two ways at once:

* *vertically* -- each shard multiplexes arbitrarily many keys over its
  fixed replica set (no per-key tasks);
* *horizontally* -- adding shard groups divides the keyspace, and the
  consistent ring keeps almost all keys in place when the shard count
  changes (reconfiguration is a roadmap follow-on).
"""

from __future__ import annotations

import asyncio
from typing import Any, Callable, Dict, Iterable, List, Mapping, Optional

from ..automata.base import ObjectAutomaton
from ..config import SystemConfig
from ..protocols import StorageProtocol
from ..spec.histories import History
from ..types import BOTTOM, _Bottom
from .hashing import HashRing
from .store import MultiRegisterStore


class ShardedKVStore:
    """Consistent-hash sharding over multiplexed replica sets.

    Keys are MWMR registers when the config declares several writers: any
    client host may ``put`` any key (``writer_index`` selects the writing
    identity) and the underlying protocols arbitrate concurrent writes
    with ``(epoch, writer_id)`` tags.  ``record_history=True`` captures
    every operation of every shard into one shared history for the
    consistency checkers (a key lives wholly in one shard, so
    per-register checks are exact).
    """

    def __init__(self, protocol_factory: Callable[[], StorageProtocol],
                 config: SystemConfig, num_shards: int = 2,
                 jitter: float = 0.0, seed: int = 0, vnodes: int = 64,
                 default_timeout: Optional[float] = 30.0,
                 batching: bool = True,
                 max_pending_per_host: Optional[int] = None,
                 record_history: bool = False):
        """``protocol_factory`` builds one protocol instance per shard so
        shard groups share no mutable protocol state (e.g. signer keys)."""
        self.config = config
        self.ring = HashRing(num_shards, vnodes=vnodes)
        self.history: Optional[History] = \
            History() if record_history else None
        self.shards: List[MultiRegisterStore] = [
            MultiRegisterStore(protocol_factory(), config,
                               jitter=jitter, seed=seed + shard,
                               default_timeout=default_timeout,
                               batching=batching,
                               max_pending_per_host=max_pending_per_host,
                               history=self.history)
            for shard in range(num_shards)
        ]
        self._started = False

    # -- lifecycle ----------------------------------------------------------
    async def start(self) -> "ShardedKVStore":
        if not self._started:
            for shard in self.shards:
                await shard.start()
            self._started = True
        return self

    async def stop(self) -> None:
        for shard in self.shards:
            await shard.stop()
        self._started = False

    async def __aenter__(self) -> "ShardedKVStore":
        return await self.start()

    async def __aexit__(self, *exc_info: Any) -> None:
        await self.stop()

    # -- placement -----------------------------------------------------------
    def shard_for(self, key: str) -> int:
        return self.ring.shard_for(key)

    def store_for(self, key: str) -> MultiRegisterStore:
        return self.shards[self.shard_for(key)]

    # -- KV API -------------------------------------------------------------
    async def put(self, key: str, value: Any,
                  timeout: Optional[float] = None,
                  writer_index: int = 0) -> None:
        await self.store_for(key).write(key, value, timeout=timeout,
                                        writer_index=writer_index)

    async def get(self, key: str, reader_index: int = 0,
                  timeout: Optional[float] = None) -> Optional[Any]:
        value = await self.store_for(key).read(key, reader_index=reader_index,
                                               timeout=timeout)
        return None if isinstance(value, _Bottom) else value

    async def put_many(self, items: Mapping[str, Any],
                       timeout: Optional[float] = None,
                       writer_index: int = 0) -> None:
        """Batch-write: one coalesced round per shard group."""
        by_shard: Dict[int, Dict[str, Any]] = {}
        for key, value in items.items():
            by_shard.setdefault(self.shard_for(key), {})[key] = value
        await asyncio.gather(*(
            self.shards[shard].write_many(chunk, timeout=timeout,
                                          writer_index=writer_index)
            for shard, chunk in by_shard.items()
        ))

    async def get_many(self, keys: Iterable[str], reader_index: int = 0,
                       timeout: Optional[float] = None
                       ) -> Dict[str, Optional[Any]]:
        by_shard: Dict[int, List[str]] = {}
        for key in dict.fromkeys(keys):  # dedupe, keep caller order
            by_shard.setdefault(self.shard_for(key), []).append(key)
        chunks = await asyncio.gather(*(
            self.shards[shard].read_many(chunk, reader_index=reader_index,
                                         timeout=timeout)
            for shard, chunk in by_shard.items()
        ))
        merged: Dict[str, Optional[Any]] = {}
        for chunk in chunks:
            for key, value in chunk.items():
                merged[key] = None if isinstance(value, _Bottom) else value
        return merged

    # -- faults ------------------------------------------------------------
    def compromise_replica(self, key: str, index: int,
                           automaton: ObjectAutomaton) -> None:
        """Turn one replica of the shard holding ``key`` Byzantine."""
        self.store_for(key).make_byzantine(index, automaton)

    def crash_replica(self, key: str, index: int) -> None:
        self.store_for(key).crash_object(index)

    # -- observability -----------------------------------------------------
    def describe(self) -> str:
        keys = sum(len(shard.registers()) for shard in self.shards)
        return (f"ShardedKVStore({len(self.shards)} shard groups x "
                f"[{self.config.describe()}]; {keys} keys; {self.ring!r})")
