"""A sharded Byzantine-tolerant key-value service.

:class:`ShardedKVStore` consistent-hashes keys across shard groups, each
one an independent :class:`~repro.service.store.MultiRegisterStore` (its
own replica set, its own fault budget ``t``/``b``).  Keys are SWMR
regular registers; the API speaks dictionary (``put``/``get``, ``None``
for missing keys) and maps straight onto register writes and reads
underneath.

Capacity therefore scales two ways at once:

* *vertically* -- each shard multiplexes arbitrarily many keys over its
  fixed replica set (no per-key tasks);
* *horizontally* -- adding shard groups divides the keyspace, and the
  consistent ring keeps almost all keys in place when the shard count
  changes.

Shard groups are keyed by integer shard id (``self.shards`` is a dict),
matching the ring's id set so groups can be added and drained *live*:
:class:`~repro.service.reconfig.ReconfigCoordinator` fences, snapshots
and replays the moved keys, then calls :meth:`apply_reconfiguration` to
flip routing atomically.
"""

from __future__ import annotations

import asyncio
import logging
import os
import shutil
import tempfile
from typing import (Any, Callable, Dict, Iterable, List, Mapping, Optional,
                    Tuple)

from ..automata.base import ObjectAutomaton
from ..config import SystemConfig
from ..errors import FencedWriteError, ReproError
from ..protocols import StorageProtocol
from ..spec.histories import History
from ..types import WriterTag, _Bottom
from .hashing import HashRing
from .store import MultiRegisterStore

_log = logging.getLogger(__name__)


async def _gather_abort_siblings(coros: List[Any]) -> List[Any]:
    """Gather per-shard chunks; on the first failure, cancel the rest.

    A plain ``asyncio.gather`` raises on the first failed chunk but lets
    its siblings run on detached -- operations nobody will ever await.
    Here the siblings are cancelled and drained before the first failure
    re-raises, so a failed batch leaves no orphaned per-key work behind.
    """
    tasks = [asyncio.ensure_future(coro) for coro in coros]
    try:
        return await asyncio.gather(*tasks)
    except BaseException:
        for task in tasks:
            task.cancel()
        await asyncio.gather(*tasks, return_exceptions=True)
        raise


class ShardedKVStore:
    """Consistent-hash sharding over multiplexed replica sets.

    Keys are MWMR registers when the config declares several writers: any
    client host may ``put`` any key (``writer_index`` selects the writing
    identity) and the underlying protocols arbitrate concurrent writes
    with ``(epoch, writer_id)`` tags.  ``record_history=True`` captures
    every operation of every shard into one shared history for the
    consistency checkers (a key lives wholly in one shard at any moment,
    and reconfiguration replays carry strictly larger tags, so
    per-register checks stay exact across a handoff).
    """

    def __init__(self, protocol_factory: Callable[[], StorageProtocol],
                 config: SystemConfig, num_shards: int = 2,
                 jitter: float = 0.0, seed: int = 0, vnodes: int = 64,
                 default_timeout: Optional[float] = 30.0,
                 batching: bool = True,
                 max_pending_per_host: Optional[int] = None,
                 record_history: bool = False,
                 data_dir: Optional[str] = None,
                 granularity: str = "group",
                 auto_heal: bool = True,
                 fast_reads: bool = False):
        """``protocol_factory`` builds one protocol instance per shard so
        shard groups share no mutable protocol state (e.g. signer keys).

        With ``config.deployment == "multiproc"`` each shard group's
        replicas run as supervised child processes with WAL + snapshot
        durability under ``data_dir`` (a fresh temp dir if omitted);
        ``granularity`` picks one child per replica or per shard group,
        and ``auto_heal`` runs
        :meth:`~repro.service.reconfig.ReconfigCoordinator.heal_replica`
        on every restarted replica so recovered-but-stale state is
        topped up before the replica matters to quorums again.
        """
        self.config = config
        self.ring = HashRing(num_shards, vnodes=vnodes)
        self.history: Optional[History] = \
            History() if record_history else None
        self._protocol_factory = protocol_factory
        self._jitter = jitter
        self._seed = seed
        self._default_timeout = default_timeout
        self._batching = batching
        self._max_pending = max_pending_per_host
        self._granularity = granularity
        self._auto_heal = auto_heal
        self._fast_reads = fast_reads
        self._owns_data_dir = False
        if data_dir is None and config.deployment == "multiproc":
            data_dir = tempfile.mkdtemp(prefix="repro-multiproc-")
            self._owns_data_dir = True
        self.data_dir = data_dir
        self.shards: Dict[int, MultiRegisterStore] = {
            shard: self.make_shard_store(shard)
            for shard in self.ring.shard_ids
        }
        #: ids of drained shard groups -- never implicitly reused, so
        #: logs/reports/seeds keyed by shard id stay unambiguous.
        self.retired_shard_ids: set = set()
        self._started = False

    def make_shard_store(self, shard_id: int) -> MultiRegisterStore:
        """A fresh shard group wired like the originals (reconfiguration).

        The store is *not* started and *not* routed to; a coordinator
        starts it, replays moved keys into it, and flips routing via
        :meth:`apply_reconfiguration`.

        This is the deployment switch: ``config.deployment`` selects
        in-proc object hosts or supervised replica processes
        (:class:`~repro.service.procs.ProcMultiRegisterStore`) -- the
        client machinery above is identical either way.
        """
        if self.config.deployment == "multiproc":
            from functools import partial

            from .procs import ProcMultiRegisterStore
            store = ProcMultiRegisterStore(
                self._protocol_factory, self.config,
                os.path.join(self.data_dir, f"shard-{shard_id}"),
                granularity=self._granularity,
                jitter=self._jitter, seed=self._seed + shard_id,
                default_timeout=self._default_timeout,
                batching=self._batching,
                max_pending_per_host=self._max_pending,
                history=self.history,
                on_replica_restart=(
                    partial(self._heal_after_restart, shard_id)
                    if self._auto_heal else None))
        else:
            store = MultiRegisterStore(self._protocol_factory(), self.config,
                                       jitter=self._jitter,
                                       seed=self._seed + shard_id,
                                       default_timeout=self._default_timeout,
                                       batching=self._batching,
                                       max_pending_per_host=self._max_pending,
                                       history=self.history)
        if self._fast_reads and store.protocol.supports_fast_reads:
            store.enable_fast_reads()
        return store

    async def _heal_after_restart(self, shard_id: int, index: int) -> None:
        """Top up a restarted replica: WAL recovery + protocol healing.

        The restarted child already replayed its snapshot + WAL, so it
        rejoins *almost* current -- missing only what was acked while it
        was dead.  ``heal_replica`` closes that gap with the paper's own
        machinery (fence, snapshot reads, replay at higher tags), after
        which the replica counts toward quorums without any special
        casing.  *Expected* failures -- a heal losing a race with
        another kill, a fenced or timed-out round, a dropped socket --
        are logged and swallowed: they leave the replica where WAL
        recovery put it, a slow replica, which the protocols tolerate
        by design.  Programming errors propagate instead (the
        supervisor's monitor logs them and keeps sweeping).
        """
        store = self.shards.get(shard_id)
        if store is None or not self._started:
            return
        from .reconfig import ReconfigCoordinator  # avoid import cycle
        try:
            await ReconfigCoordinator(self).heal_replica(shard_id, index)
        except (ReproError, asyncio.TimeoutError, OSError) as exc:
            _log.warning(
                "heal of shard %d replica %d after restart failed "
                "(%s: %s); replica rejoins with WAL-recovered state",
                shard_id, index, type(exc).__name__, exc)

    # -- lifecycle ----------------------------------------------------------
    async def start(self) -> "ShardedKVStore":
        if self._started:
            return self
        # Claim the flag before the first await: a concurrent start()
        # must not double-start the shard stores (each spawns hosts,
        # and under multiproc deployment, child processes).
        self._started = True
        try:
            for shard in self.shards.values():
                await shard.start()
        except BaseException:
            self._started = False
            raise
        return self

    async def stop(self) -> None:
        if not self._started:
            return  # idempotent, like the shard stores underneath
        self._started = False
        for shard in self.shards.values():
            await shard.stop()
        if self._owns_data_dir and self.data_dir is not None:
            # We created this temp dir; a stopped store's WAL/snapshots
            # have no further reader (restart recreates per-replica
            # dirs on demand).  Deleting a tree of WAL segments can take
            # hundreds of milliseconds -- off the loop.
            await asyncio.get_running_loop().run_in_executor(
                None, lambda: shutil.rmtree(self.data_dir,
                                            ignore_errors=True))

    async def __aenter__(self) -> "ShardedKVStore":
        return await self.start()

    async def __aexit__(self, *exc_info: Any) -> None:
        await self.stop()

    # -- placement -----------------------------------------------------------
    def shard_for(self, key: str) -> int:
        return self.ring.shard_for(key)

    def store_for(self, key: str) -> MultiRegisterStore:
        return self.shards[self.shard_for(key)]

    def apply_reconfiguration(
            self, ring: HashRing,
            shards: Dict[int, MultiRegisterStore]) -> None:
        """Atomically flip routing to a new ring + shard map.

        No awaits: on the single-threaded event loop every operation
        routed before this call used the old placement end to end, and
        every one after it the new -- there is no torn state in between.
        The coordinator is responsible for having migrated the moved
        keys first.
        """
        if set(ring.shard_ids) != set(shards):
            raise ValueError(
                f"ring ids {ring.shard_ids} do not match shard map ids "
                f"{sorted(shards)}")
        self.retired_shard_ids |= set(self.shards) - set(shards)
        self.ring = ring
        self.shards = shards
        # A routing flip retires every pre-flip read lease: migrated keys
        # were replayed into their new shard group at strictly larger
        # tags, so a lease minted against the old placement could serve a
        # value the handoff has already superseded.  Dropping all leases
        # is coarse but the flip is rare; readers re-arm on their next
        # classic read.
        for shard in shards.values():
            shard.invalidate_leases()

    # -- KV API -------------------------------------------------------------
    async def put(self, key: str, value: Any,
                  timeout: Optional[float] = None,
                  writer_index: int = 0, retries: int = 0) -> None:
        """PUT one key.

        ``retries`` bounds how many :class:`~repro.errors.
        FencedWriteError` aborts are absorbed by re-resolving the key's
        routing and writing again: a fence means the key is (or was)
        mid-handoff, and once the coordinator flips routing the retry
        lands on the key's new shard group.  A short sleep between
        attempts gives the in-flight migration wall-clock time to reach
        its flip (a bare event-loop yield would burn the whole budget in
        a few turns).  ``retries=0`` (the default) keeps the historical
        fail-fast behaviour; for policy-shaped backoff use the session
        API (:class:`~repro.api.RetryPolicy`), which this sugar
        deliberately does not duplicate.
        """
        while True:
            store = self.store_for(key)
            try:
                await store.write(key, value, timeout=timeout,
                                  writer_index=writer_index)
                return
            except FencedWriteError:
                # The key is mid-handoff: any lease this shard group's
                # readers hold on it describes pre-fence state, and the
                # retry may land on a different group entirely.
                store.invalidate_leases([key])
                if retries <= 0:
                    raise
                retries -= 1
                await asyncio.sleep(0.001)

    async def put_tagged(self, key: str, value: Any,
                         timeout: Optional[float] = None,
                         writer_index: int = 0
                         ) -> Optional[WriterTag]:
        """PUT one key and report the ``(epoch, writer_id)`` tag installed.

        The conditional-write path (:meth:`~repro.api.Session.put_if`)
        needs the tag the write actually got, so callers can chain
        compare-and-set style updates without an extra read.
        """
        _, tag = await self.store_for(key).write_tagged(
            key, value, timeout=timeout, writer_index=writer_index)
        return tag

    async def get(self, key: str, reader_index: int = 0,
                  timeout: Optional[float] = None) -> Optional[Any]:
        value = await self.store_for(key).read(key, reader_index=reader_index,
                                               timeout=timeout)
        return None if isinstance(value, _Bottom) else value

    async def get_tagged(self, key: str, reader_index: int = 0,
                         timeout: Optional[float] = None
                         ) -> Tuple[Optional[Any], Optional[WriterTag]]:
        """GET one key together with the version tag the read observed."""
        value, tag = await self.store_for(key).read_tagged(
            key, reader_index=reader_index, timeout=timeout)
        return (None if isinstance(value, _Bottom) else value), tag

    async def put_many(self, items: Mapping[str, Any],
                       timeout: Optional[float] = None,
                       writer_index: int = 0) -> None:
        """Batch-write: one vector round per (replica, step) per shard.

        Each shard group drives its chunk through the vector round
        engine -- a single frame per base object per protocol step.  A
        batch landing wholly in one shard skips the per-shard task
        fan-out.
        """
        by_shard: Dict[int, Dict[str, Any]] = {}
        for key, value in items.items():
            by_shard.setdefault(self.shard_for(key), {})[key] = value
        if len(by_shard) == 1:
            (shard, chunk), = by_shard.items()
            await self.shards[shard].write_many(chunk, timeout=timeout,
                                                writer_index=writer_index)
            return
        await _gather_abort_siblings([
            self.shards[shard].write_many(chunk, timeout=timeout,
                                          writer_index=writer_index)
            for shard, chunk in by_shard.items()
        ])

    async def get_many(self, keys: Iterable[str], reader_index: int = 0,
                       timeout: Optional[float] = None
                       ) -> Dict[str, Optional[Any]]:
        ordered = list(dict.fromkeys(keys))  # dedupe, keep caller order
        by_shard: Dict[int, List[str]] = {}
        for key in ordered:
            by_shard.setdefault(self.shard_for(key), []).append(key)
        if len(by_shard) == 1:
            (shard, chunk), = by_shard.items()
            chunks = [await self.shards[shard].read_many(
                chunk, reader_index=reader_index, timeout=timeout)]
        else:
            chunks = await _gather_abort_siblings([
                self.shards[shard].read_many(chunk,
                                             reader_index=reader_index,
                                             timeout=timeout)
                for shard, chunk in by_shard.items()
            ])
        fetched: Dict[str, Any] = {}
        for chunk in chunks:
            fetched.update(chunk)
        # Merge in *caller* order, not shard-chunk order: dict iteration
        # order is part of the API surface and callers zip against their
        # own key lists.
        return {key: (None if isinstance(fetched[key], _Bottom)
                      else fetched[key])
                for key in ordered}

    async def get_many_tagged(self, keys: Iterable[str],
                              reader_index: int = 0,
                              timeout: Optional[float] = None
                              ) -> Dict[str, Tuple[Optional[Any],
                                                   Optional[WriterTag]]]:
        """Batched :meth:`get_tagged` across shard groups, caller order.

        One tag collect of a snapshot round: every shard group reads its
        chunk concurrently (rounds coalesced per object as usual) and
        each key reports the version tag its read observed.
        """
        ordered = list(dict.fromkeys(keys))
        by_shard: Dict[int, List[str]] = {}
        for key in ordered:
            by_shard.setdefault(self.shard_for(key), []).append(key)
        if len(by_shard) == 1:
            (shard, chunk), = by_shard.items()
            chunks = [await self.shards[shard].read_many_tagged(
                chunk, reader_index=reader_index, timeout=timeout)]
        else:
            chunks = await _gather_abort_siblings([
                self.shards[shard].read_many_tagged(
                    chunk, reader_index=reader_index, timeout=timeout)
                for shard, chunk in by_shard.items()
            ])
        fetched: Dict[str, Tuple[Any, Optional[WriterTag]]] = {}
        for chunk in chunks:
            fetched.update(chunk)
        return {key: ((None if isinstance(fetched[key][0], _Bottom)
                       else fetched[key][0]), fetched[key][1])
                for key in ordered}

    def invalidate_leases(self,
                          register_ids: Optional[Iterable[str]] = None
                          ) -> None:
        """Drop read leases cluster-wide, or for specific keys (routed)."""
        if register_ids is None:
            for shard in self.shards.values():
                shard.invalidate_leases()
            return
        by_shard: Dict[int, List[str]] = {}
        for key in register_ids:
            by_shard.setdefault(self.shard_for(key), []).append(key)
        for shard, chunk in by_shard.items():
            self.shards[shard].invalidate_leases(chunk)

    def grant_read_leases(
            self, entries: Mapping[str, Tuple[Optional[WriterTag], Any]]
            ) -> None:
        """Seed read leases from externally certified ``(tag, value)``
        pairs -- e.g. a snapshot's confirmed cut (routed per key)."""
        by_shard: Dict[int, Dict[str, Tuple[Optional[WriterTag], Any]]] = {}
        for key, entry in entries.items():
            by_shard.setdefault(self.shard_for(key), {})[key] = entry
        for shard, chunk in by_shard.items():
            self.shards[shard].grant_read_leases(chunk)

    # -- faults ------------------------------------------------------------
    def compromise_replica(self, key: str, index: int,
                           automaton: ObjectAutomaton) -> None:
        """Turn one replica of the shard holding ``key`` Byzantine."""
        self.store_for(key).make_byzantine(index, automaton)

    def crash_replica(self, key: str, index: int) -> None:
        self.store_for(key).crash_object(index)

    # -- observability -----------------------------------------------------
    def known_keys(self) -> List[str]:
        """Every key any shard group has client state for."""
        keys = set()
        for shard in self.shards.values():
            keys.update(shard.registers())
        return sorted(keys)

    def stats(self) -> Dict[str, Any]:
        """Aggregate fast-read efficacy counters across shard groups."""
        totals: Dict[str, Any] = {
            "fast_reads_enabled": self._fast_reads,
            "fast_reads_taken": 0,
            "fast_read_fallbacks": 0,
            "lease_invalidations": 0,
            "messages_sent": 0,
        }
        per_shard: Dict[int, Dict[str, Any]] = {}
        for shard_id, shard in self.shards.items():
            stats = shard.stats()
            per_shard[shard_id] = stats
            for counter in ("fast_reads_taken", "fast_read_fallbacks",
                            "lease_invalidations", "messages_sent"):
                totals[counter] += stats[counter]
        totals["per_shard"] = per_shard
        return totals

    def describe(self) -> str:
        keys = sum(len(shard.registers()) for shard in self.shards.values())
        return (f"ShardedKVStore({len(self.shards)} shard groups x "
                f"[{self.config.describe()}]; {keys} keys; {self.ring!r})")
