"""``python -m repro.chaos`` -- the chaos smoke matrix.

CI runs a fixed seed matrix over the named scenarios on every PR::

    python -m repro.chaos --seeds 8 --artifact chaos-failures.json

Any failing seed is shrunk to a minimal reproducer and written to the
artifact path (one JSON document with every reproducer), and the
process exits non-zero.  Replay a saved reproducer with::

    python -m repro.chaos --replay chaos-failures.json
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List

from .explorer import explore, reproducer_dict, replay_reproducer, shrink
from .harness import SCENARIOS, get_scenario
from .reconfig_chaos import CRASH_DURING_RECONFIG, run_crash_during_reconfig


def _parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.chaos",
        description="seeded chaos smoke matrix over the named scenarios")
    parser.add_argument("--scenarios", nargs="*",
                        default=sorted(SCENARIOS) + [CRASH_DURING_RECONFIG],
                        help="scenario names (default: all named scenarios)")
    parser.add_argument("--seeds", type=int, default=8,
                        help="number of seeds per scenario (default: 8)")
    parser.add_argument("--seed-base", type=int, default=0,
                        help="first seed of the range (default: 0)")
    parser.add_argument("--artifact", default=None,
                        help="write shrunk reproducers for failures here")
    parser.add_argument("--no-shrink", action="store_true",
                        help="report failures without minimizing them")
    parser.add_argument("--replay", default=None, metavar="FILE",
                        help="replay reproducers from FILE instead of "
                             "exploring")
    return parser


def _replay_file(path: str) -> int:
    with open(path, "r", encoding="utf-8") as handle:
        data = json.load(handle)
    reproducers = data if isinstance(data, list) else [data]
    failures = 0
    for entry in reproducers:
        verdict = replay_reproducer(entry)
        expected = set(entry.get("expected", {}).get(
            "failing_properties", []))
        got = set(verdict.failing_properties())
        match = "reproduced" if expected & got or (
            not expected and not verdict.ok) else "DID NOT REPRODUCE"
        print(f"{verdict.summary()}  [{match}]")
        if not verdict.ok:
            failures += 1
    return 0 if failures == len(reproducers) else 1


def main(argv: List[str] = None) -> int:
    args = _parser().parse_args(argv)
    if args.replay:
        return _replay_file(args.replay)

    seeds = list(range(args.seed_base, args.seed_base + args.seeds))
    artifacts = []
    exit_code = 0
    for name in args.scenarios:
        if name == CRASH_DURING_RECONFIG:
            # Service tier: seed-per-run, no schedule to shrink.
            for seed in seeds:
                verdict = run_crash_during_reconfig(seed)
                status = "OK" if verdict.ok else "FAIL"
                print(f"{CRASH_DURING_RECONFIG} seed={seed}: {status} "
                      f"(killed replica {verdict.counters['kill_replica']} "
                      f"at stage {verdict.counters['kill_stage']!r}, "
                      f"{verdict.counters['keys_moved']} key(s) migrated)")
                if not verdict.ok:
                    exit_code = 1
                    for line in verdict.violations():
                        print(f"  {line}")
            continue
        scenario = get_scenario(name)
        report = explore(scenario, seeds)
        print(report.summary())
        for seed in report.seeds:
            verdict = report.verdicts.get(seed)
            if verdict is None or verdict.ok:
                continue
            exit_code = 1
            schedule = report.schedules[seed]
            if args.no_shrink:
                artifacts.append(reproducer_dict(schedule, verdict))
                print(f"  seed {seed}: {verdict.summary()}")
                continue
            result = shrink(scenario, schedule, verdict)
            artifacts.append(reproducer_dict(result.schedule,
                                             result.verdict))
            print(f"  seed {seed}: {result.summary()}")
            for line in result.verdict.violations():
                print(f"    {line}")

    if artifacts and args.artifact:
        with open(args.artifact, "w", encoding="utf-8") as handle:
            json.dump(artifacts, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"wrote {len(artifacts)} reproducer(s) to {args.artifact}")
    return exit_code


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
