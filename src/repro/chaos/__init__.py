"""Deterministic chaos harness: strategies × schedules × shrinking.

The paper's theorems quantify over *every* execution under the
``(t, b)`` adversary; hand-written tests only visit a few.  This
package explores the space mechanically while keeping every run
replayable from one integer:

* :mod:`~repro.chaos.strategies` -- the composable Byzantine strategy
  library (named behaviours + ``sequence``/``after_step``/
  ``probabilistic`` combinators over ``StrategyFactory``);
* :mod:`~repro.chaos.schedule` -- declarative :class:`FaultSchedule`
  events applied at deterministic kernel steps, with a JSON form;
* :mod:`~repro.chaos.inject` -- the :class:`FaultInjector` applying
  them to a live system within the fault budget;
* :mod:`~repro.chaos.harness` -- named scenarios and
  :func:`run_chaos`, gating every run on the spec checkers;
* :mod:`~repro.chaos.explorer` -- seeded schedule generation, seed
  sweeps, ddmin shrinking, and reproducer save/replay;
* :mod:`~repro.chaos.reconfig_chaos` -- the service-tier
  crash-during-reconfig scenario;
* ``python -m repro.chaos`` -- the CI smoke matrix CLI.
"""

from .explorer import (ExploreReport, ShrinkResult, explore,
                       generate_schedule, load_reproducer,
                       replay_reproducer, reproducer_dict, run_seed,
                       save_reproducer, shrink)
from .harness import (SCENARIOS, ChaosScenario, ChaosVerdict, CheckOutcome,
                      WorkloadOp, get_scenario, run_chaos)
from .inject import FaultInjector
from .reconfig_chaos import CRASH_DURING_RECONFIG, run_crash_during_reconfig
from .schedule import (EVENT_KINDS, FaultEvent, FaultSchedule, format_pid,
                       parse_pid, validate_schedule)
from .seeds import derive_seed
from .strategies import (STRATEGIES, StrategyEntry, after_step,
                         build_strategy, probabilistic,
                         registered_wrapper_names, sequence, spec_of,
                         strategy_names)

__all__ = [
    "CRASH_DURING_RECONFIG",
    "ChaosScenario",
    "ChaosVerdict",
    "CheckOutcome",
    "EVENT_KINDS",
    "ExploreReport",
    "FaultEvent",
    "FaultInjector",
    "FaultSchedule",
    "SCENARIOS",
    "STRATEGIES",
    "ShrinkResult",
    "StrategyEntry",
    "WorkloadOp",
    "after_step",
    "build_strategy",
    "derive_seed",
    "explore",
    "format_pid",
    "generate_schedule",
    "get_scenario",
    "load_reproducer",
    "parse_pid",
    "probabilistic",
    "registered_wrapper_names",
    "replay_reproducer",
    "reproducer_dict",
    "run_chaos",
    "run_crash_during_reconfig",
    "run_seed",
    "save_reproducer",
    "sequence",
    "shrink",
    "spec_of",
    "strategy_names",
    "validate_schedule",
]
