"""Seeded schedule exploration with shrinking.

The explorer closes the loop the tentpole promises:

1. :func:`generate_schedule` -- a random walk over a scenario's allowed
   fault kinds, driven entirely by ``derive_seed(seed, ...)`` streams,
   so one integer names the whole schedule;
2. :func:`explore` -- run a seed range, gate every run on the
   scenario's checker suite, collect failures;
3. :func:`shrink` -- ddmin-style delta debugging over the failing
   schedule's event list (plus per-event simplification), preserving
   the *same* checker violation, until the reproducer is minimal;
4. :func:`save_reproducer` / :func:`replay_reproducer` -- a JSON file
   that replays to the identical verdict, fingerprint and all.

Shrinking is deterministic delta debugging rather than generic
hypothesis shrinking: a chaos run's input is the structured
``(seed, events)`` pair, and ddmin over the event tuple (the seed is
never shrunk -- it pins the RNG streams) gives 1-minimal reproducers
with a bounded, replayable number of candidate runs.  The hypothesis
toolbox still backs the *property* side of the test suite.
"""

from __future__ import annotations

import json
import random
from dataclasses import dataclass, field
from typing import (Any, Dict, Iterable, List, Mapping, Optional, Sequence,
                    Set, Tuple)

from ..types import reader, writer
from .harness import ChaosScenario, ChaosVerdict, get_scenario, run_chaos
from .schedule import FaultEvent, FaultSchedule, format_pid
from .seeds import derive_seed
from .strategies import spec_of


# ---------------------------------------------------------------------------
# Schedule generation
# ---------------------------------------------------------------------------


def generate_schedule(scenario: ChaosScenario, seed: int) -> FaultSchedule:
    """A seeded random fault schedule legal for ``scenario``'s budget."""
    rng = random.Random(derive_seed(seed, "generate", scenario.name))
    # The budget comes from a throwaway system build; building is cheap
    # and keeps the generator honest about the scenario's real config.
    system = scenario.build(seed)
    t, b = system.config.t, system.config.b
    num_objects = system.config.num_objects
    num_readers = system.config.num_readers
    num_writers = system.config.num_writers
    registers = system.registers()
    del system
    writer_names = [format_pid(writer(k)) for k in range(num_writers)]
    reader_names = [format_pid(reader(j)) for j in range(num_readers)]

    events: List[FaultEvent] = []
    crashed: Set[int] = set()
    corrupted: Set[int] = set()
    count = rng.randint(1, scenario.max_events)
    for index in range(count):
        kind = rng.choice(scenario.event_kinds)
        at = rng.randrange(0, scenario.event_window)
        params: Dict[str, Any] = {}
        if kind == "partition":
            victim = rng.randrange(num_objects)
            group: List[str] = [f"s{victim + 1}"]
            if rng.random() < 0.4:
                group.append(rng.choice(reader_names))
            # The majority side lists *everyone* else -- objects AND
            # clients.  Unlisted processes bypass the cut entirely, so a
            # groups list of objects alone would never stop a writer
            # reaching the victim.
            rest = ([f"s{i + 1}" for i in range(num_objects)]
                    + writer_names + reader_names)
            rest = [name for name in rest if name not in group]
            params = {"groups": [group, rest],
                      "tag": f"chaos-cut-{index}"}
            events.append(FaultEvent(at, "partition", params))
            # Always schedule the matching heal: unbounded asynchrony is
            # legal but drowns the signal (nothing completes, nothing is
            # checked).  The run-end drain heals leftovers anyway.
            events.append(FaultEvent(
                at + rng.randrange(10, scenario.event_window),
                "heal", {"tag": params["tag"]}))
            continue
        if kind == "crash":
            candidates = [i for i in range(num_objects)
                          if i not in crashed and i not in corrupted]
            if not candidates or len(crashed | corrupted) >= t:
                continue
            target = rng.choice(candidates)
            crashed.add(target)
            events.append(FaultEvent(at, "crash", {"object": target}))
            if rng.random() < 0.5:
                events.append(FaultEvent(
                    at + rng.randrange(5, 60), "restore",
                    {"object": target}))
            continue
        if kind == "restore":
            if not crashed:
                continue
            target = rng.choice(sorted(crashed))
            events.append(FaultEvent(at, "restore", {"object": target}))
            continue
        if kind == "corrupt":
            candidates = [i for i in range(num_objects)
                          if i not in crashed and i not in corrupted]
            if (not candidates or len(corrupted) >= b
                    or len(crashed | corrupted) >= t):
                continue
            target = rng.choice(candidates)
            corrupted.add(target)
            strategy: Any = rng.choice(scenario.strategies)
            if rng.random() < 0.3:
                # Wrap in a combinator: time-varying or intermittent.
                if rng.random() < 0.5:
                    strategy = spec_of("after-step",
                                       after=rng.randrange(2, 20),
                                       strategy=strategy)
                else:
                    strategy = spec_of("probabilistic",
                                       p=round(rng.uniform(0.2, 0.9), 2),
                                       strategy=strategy)
            params = {"object": target, "strategy": strategy}
            events.append(FaultEvent(at, "corrupt", params))
            continue
        if kind == "delay":
            if rng.random() < 0.5:
                params = {"model": "uniform", "low": 0.0,
                          "high": round(rng.uniform(0.5, 3.0), 3)}
            else:
                params = {"model": "exponential", "base": 0.1,
                          "mean": round(rng.uniform(0.5, 2.0), 3)}
            events.append(FaultEvent(at, "delay", params))
            continue
        if kind == "gray":
            target = rng.randrange(num_objects)
            params = {"objects": [target],
                      "slow": round(rng.uniform(5.0, 40.0), 2),
                      "fast": 1.0}
            events.append(FaultEvent(at, "gray", params))
            continue
        if kind == "clock_skew":
            params = {"delta": round(rng.uniform(0.5, 25.0), 3)}
            events.append(FaultEvent(at, "clock_skew", params))
            continue
        if kind == "epoch_skew":
            params = {"register": rng.choice(registers or ["r0"]),
                      "epoch": rng.randint(1, 40),
                      "writer_index": 0}
            events.append(FaultEvent(at, "epoch_skew", params))
            continue
        if kind == "drop":
            if not corrupted:
                continue
            target = rng.choice(sorted(corrupted))
            events.append(FaultEvent(at, "drop", {"object": target}))
            continue
    return FaultSchedule(seed=seed, events=tuple(events),
                         scenario=scenario.name)


# ---------------------------------------------------------------------------
# Exploration
# ---------------------------------------------------------------------------


@dataclass
class ExploreReport:
    """Outcome of sweeping a seed range over one scenario."""

    scenario: str
    seeds: List[int]
    verdicts: Dict[int, ChaosVerdict] = field(default_factory=dict)
    schedules: Dict[int, FaultSchedule] = field(default_factory=dict)

    @property
    def failures(self) -> List[ChaosVerdict]:
        return [self.verdicts[seed] for seed in self.seeds
                if seed in self.verdicts and not self.verdicts[seed].ok]

    @property
    def ok(self) -> bool:
        return not self.failures

    def first_failure(self) -> Optional[Tuple[FaultSchedule, ChaosVerdict]]:
        for seed in self.seeds:
            verdict = self.verdicts.get(seed)
            if verdict is not None and not verdict.ok:
                return self.schedules[seed], verdict
        return None

    def summary(self) -> str:
        ran = len(self.verdicts)
        bad = len(self.failures)
        status = "OK" if not bad else f"{bad} FAILING SEED(S)"
        return f"{self.scenario}: {ran} run(s), {status}"


def run_seed(scenario: ChaosScenario,
             seed: int) -> Tuple[FaultSchedule, ChaosVerdict]:
    schedule = generate_schedule(scenario, seed)
    return schedule, run_chaos(scenario, schedule)


def explore(scenario: ChaosScenario, seeds: Iterable[int],
            stop_at_first_failure: bool = False) -> ExploreReport:
    """Sweep ``seeds``; every run is gated on the scenario's checkers."""
    report = ExploreReport(scenario=scenario.name, seeds=list(seeds))
    for seed in report.seeds:
        schedule, verdict = run_seed(scenario, seed)
        report.schedules[seed] = schedule
        report.verdicts[seed] = verdict
        if not verdict.ok and stop_at_first_failure:
            break
    return report


# ---------------------------------------------------------------------------
# Shrinking
# ---------------------------------------------------------------------------


@dataclass
class ShrinkResult:
    """A minimized failing schedule plus the evidence trail."""

    schedule: FaultSchedule
    verdict: ChaosVerdict
    runs: int
    original_events: int

    def summary(self) -> str:
        return (f"shrunk {self.original_events} -> "
                f"{len(self.schedule.events)} event(s) in {self.runs} "
                f"run(s); still fails "
                f"{', '.join(self.verdict.failing_properties())}")


def _still_fails(scenario: ChaosScenario, schedule: FaultSchedule,
                 properties: Set[str]) -> Optional[ChaosVerdict]:
    """The shrink oracle: does this candidate fail the *same* checker?"""
    verdict = run_chaos(scenario, schedule)
    if verdict.ok:
        return None
    if properties and not (properties & set(verdict.failing_properties())):
        return None
    return verdict


def shrink(scenario: ChaosScenario, schedule: FaultSchedule,
           verdict: Optional[ChaosVerdict] = None,
           max_runs: int = 200) -> ShrinkResult:
    """ddmin over the event list: a 1-minimal reproducer of the failure.

    Every deleted subset that still triggers the original checker
    violation is accepted; the loop ends when no single event can be
    removed (1-minimality) or the run budget is spent.  A second pass
    simplifies surviving events (unwrap strategy combinators) under the
    same oracle.
    """
    if verdict is None:
        verdict = run_chaos(scenario, schedule)
    if verdict.ok:
        raise ValueError("shrink() needs a failing (scenario, schedule)")
    properties = set(verdict.failing_properties())
    events = list(schedule.events)
    original = len(events)
    best = verdict
    runs = 0

    chunk = max(1, len(events) // 2)
    while events and runs < max_runs:
        chunk = min(chunk, len(events))
        reduced = False
        start = 0
        while start < len(events) and runs < max_runs:
            trial = events[:start] + events[start + chunk:]
            candidate = schedule.replace_events(trial)
            runs += 1
            outcome = _still_fails(scenario, candidate, properties)
            if outcome is not None:
                # Keep the deletion; the next chunk shifted into place,
                # so retry at the same offset.
                events = trial
                best = outcome
                reduced = True
            else:
                start += chunk
        if not reduced:
            if chunk == 1:
                break  # 1-minimal: no single event can go.
            chunk = max(1, chunk // 2)

    for index, event in enumerate(list(events)):
        if runs >= max_runs:
            break
        simplified = _simplify_event(event)
        if simplified is None:
            continue
        trial = list(events)
        trial[index] = simplified
        runs += 1
        outcome = _still_fails(scenario, schedule.replace_events(trial),
                               properties)
        if outcome is not None:
            events = trial
            best = outcome

    return ShrinkResult(schedule=schedule.replace_events(events),
                        verdict=best, runs=runs, original_events=original)


def _simplify_event(event: FaultEvent) -> Optional[FaultEvent]:
    """One structural simplification, or None if already minimal."""
    if event.kind == "corrupt":
        strategy = event.params.get("strategy")
        if isinstance(strategy, Mapping):
            inner = strategy.get("params", {}).get("strategy")
            if inner is not None:
                params = dict(event.params)
                params["strategy"] = inner
                return FaultEvent(event.at_step, event.kind, params)
    return None


# ---------------------------------------------------------------------------
# Reproducers
# ---------------------------------------------------------------------------

REPRODUCER_VERSION = 1


def reproducer_dict(schedule: FaultSchedule,
                    verdict: ChaosVerdict) -> Dict[str, Any]:
    return {
        "version": REPRODUCER_VERSION,
        "scenario": schedule.scenario,
        "schedule": schedule.to_dict(),
        "expected": {
            "failing_properties": verdict.failing_properties(),
            "fingerprint": verdict.fingerprint,
            "violations": verdict.violations(),
        },
    }


def save_reproducer(path: str, schedule: FaultSchedule,
                    verdict: ChaosVerdict) -> None:
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(reproducer_dict(schedule, verdict), handle, indent=2,
                  sort_keys=True)
        handle.write("\n")


def load_reproducer(path: str) -> Dict[str, Any]:
    with open(path, "r", encoding="utf-8") as handle:
        return json.load(handle)


def replay_reproducer(data: Mapping[str, Any]) -> ChaosVerdict:
    """Re-run a saved reproducer through the named scenario."""
    schedule = FaultSchedule.from_dict(data["schedule"])
    scenario = get_scenario(str(data["scenario"]))
    return run_chaos(scenario, schedule)


__all__ = [
    "ExploreReport",
    "ShrinkResult",
    "explore",
    "generate_schedule",
    "load_reproducer",
    "replay_reproducer",
    "reproducer_dict",
    "run_seed",
    "save_reproducer",
    "shrink",
]
