"""Composable Byzantine strategy library.

:mod:`repro.adversary.byzantine` ships the raw behaviours -- each one a
:class:`~repro.adversary.byzantine.ByzantineWrapper` distorting an honest
automaton.  This module makes them *data*:

* every behaviour gets a **registered name** with a parameter schema, so
  a :class:`~repro.chaos.schedule.FaultSchedule` (and its JSON form) can
  say ``{"name": "forger", "params": {"ts_boost": 77}}``;
* **combinators** (:func:`sequence`, :func:`after_step`,
  :func:`probabilistic`) compose behaviours over the existing
  ``StrategyFactory`` type, so a ``FaultPlan`` can express time-varying
  conduct ("honest for 10 deliveries, then equivocate");
* all strategy randomness threads through :func:`~repro.chaos.seeds.
  derive_seed`, so a schedule's master seed determines every forged bit.

The registry doubles as the ground truth for the ``chaos-strategy-
registry`` reprolint rule: a ``ByzantineWrapper`` subclass anywhere in
the tree that is not reachable from here fails the sweep.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import (Any, Callable, Dict, FrozenSet, List, Mapping, Optional,
                    Sequence, Tuple, Union)

from ..adversary.byzantine import (AckFlooder, ByzantineWrapper, Equivocator,
                                   GarbageByzantine, HistoryForger,
                                   MuteByzantine, StaleReplier,
                                   StaleTagForger, TsrInflater, TwoFaced,
                                   ValueForger)
from ..adversary.plans import StrategyFactory
from ..automata.base import ObjectAutomaton, Outgoing
from ..config import SystemConfig
from ..errors import ConfigurationError
from ..types import ProcessId, WriterTag
from .seeds import derive_seed

#: A strategy spec: a registered name, or a mapping with ``name`` and
#: optional ``params`` (which may nest further specs for combinators).
StrategySpec = Union[str, Mapping[str, Any]]


# ---------------------------------------------------------------------------
# Combinator wrappers
# ---------------------------------------------------------------------------


class SwitchingByzantine(ByzantineWrapper):
    """Time-varying conduct: switch behaviour at delivery thresholds.

    ``stages`` maps a 0-based delivery index to the automaton that
    handles messages from that delivery on; the last stage whose
    threshold has been reached is active.  Stage automata share the
    wrapped honest ``inner`` (each is a wrapper around the same state),
    so state learned while honest carries into the corrupt phase.
    """

    def __init__(self, inner: ObjectAutomaton,
                 stages: Sequence[Tuple[int, ObjectAutomaton]]):
        super().__init__(inner)
        if not stages:
            raise ConfigurationError("SwitchingByzantine needs >= 1 stage")
        self.stages = sorted(stages, key=lambda pair: pair[0])
        self.deliveries = 0

    def _active(self) -> ObjectAutomaton:
        chosen = self.inner
        for threshold, automaton in self.stages:
            if self.deliveries >= threshold:
                chosen = automaton
        return chosen

    def on_message(self, sender: ProcessId, message: Any) -> Outgoing:
        automaton = self._active()
        self.deliveries += 1
        return automaton.on_message(sender, message)


class ProbabilisticByzantine(ByzantineWrapper):
    """Flips a seeded coin per delivery: corrupt with probability ``p``.

    Models intermittent corruption -- a replica that only sometimes
    lies is harder to vote out and exercises per-message (rather than
    per-process) fault absorption.
    """

    def __init__(self, inner: ObjectAutomaton, corrupt: ObjectAutomaton,
                 p: float, seed: int):
        super().__init__(inner)
        if not 0.0 <= p <= 1.0:
            raise ConfigurationError(f"probability {p} outside [0, 1]")
        self.corrupt = corrupt
        self.p = p
        self._rng = random.Random(seed)

    def on_message(self, sender: ProcessId, message: Any) -> Outgoing:
        if self._rng.random() < self.p:
            return self.corrupt.on_message(sender, message)
        return self.inner.on_message(sender, message)


class DelayThenForge(ByzantineWrapper):
    """Withholds its first ``quiet`` replies, then releases them forged.

    The paper's adversary controls *when* a corrupt object speaks as
    much as *what* it says: withheld acks make the object look slow (so
    clients settle on the remaining quorum), then the backlog arrives
    carrying an inflated-timestamp forgery.  A correct reader must still
    demand ``b + 1`` confirmations before believing the late wave.
    """

    def __init__(self, inner: ObjectAutomaton, config: SystemConfig,
                 quiet: int = 3, forged_value: Any = "LATE-FORGE",
                 ts_boost: int = 500):
        super().__init__(inner)
        self.quiet = quiet
        self._forger = ValueForger(inner, config, forged_value, ts_boost)
        self._held: List[Tuple[ProcessId, Any]] = []
        self._seen = 0

    def transform(self, sender: ProcessId, message: Any,
                  replies: Outgoing) -> Outgoing:
        self._seen += 1
        if self._seen <= self.quiet:
            self._held.extend(replies)
            return []
        backlog = self._held + list(replies)
        self._held = []
        return self._forger.transform(sender, message, backlog)


class BadAggregator(ByzantineWrapper):
    """Mangles multi-reply responses: drops and duplicates reply parts.

    Batched rounds expect each object to contribute one coherent bundle
    of acks; a bad aggregator breaks the bundle invariant -- some parts
    vanish, others arrive twice -- without forging any individual
    payload.  Readers' set semantics (count evidence per object, not per
    message) are what must absorb this.
    """

    def __init__(self, inner: ObjectAutomaton, config: SystemConfig,
                 seed: int, drop_p: float = 0.3, dup_p: float = 0.3):
        super().__init__(inner)
        self.config = config
        self.drop_p = drop_p
        self.dup_p = dup_p
        self._rng = random.Random(seed)

    def transform(self, sender: ProcessId, message: Any,
                  replies: Outgoing) -> Outgoing:
        out: Outgoing = []
        for pair in replies:
            roll = self._rng.random()
            if roll < self.drop_p:
                continue
            out.append(pair)
            if roll > 1.0 - self.dup_p:
                out.append(pair)
        return out


# ---------------------------------------------------------------------------
# Functional combinators over StrategyFactory
# ---------------------------------------------------------------------------


def sequence(*stages: Tuple[int, Optional[StrategyFactory]]
             ) -> StrategyFactory:
    """Compose factories into time-varying conduct.

    Each ``(threshold, factory)`` stage activates once the object has
    handled ``threshold`` deliveries; ``factory=None`` means honest.
    Usable directly as a ``FaultPlan.byzantine`` value.
    """

    def build(inner: ObjectAutomaton,
              config: SystemConfig) -> ObjectAutomaton:
        built = [(threshold,
                  inner if factory is None else factory(inner, config))
                 for threshold, factory in stages]
        return SwitchingByzantine(inner, built)

    return build


def after_step(threshold: int, factory: StrategyFactory) -> StrategyFactory:
    """Honest until ``threshold`` deliveries, then ``factory``'s conduct."""
    return sequence((0, None), (threshold, factory))


def probabilistic(p: float, factory: StrategyFactory,
                  seed: int = 0) -> StrategyFactory:
    """Apply ``factory``'s conduct to each delivery with probability ``p``."""

    def build(inner: ObjectAutomaton,
              config: SystemConfig) -> ObjectAutomaton:
        return ProbabilisticByzantine(inner, factory(inner, config), p, seed)

    return build


# ---------------------------------------------------------------------------
# The registry
# ---------------------------------------------------------------------------

#: A builder: (params, seed) -> StrategyFactory.  ``seed`` is already
#: derived for this strategy instance; builders derive further for
#: sub-strategies.
_Builder = Callable[[Mapping[str, Any], int], StrategyFactory]


@dataclass(frozen=True)
class StrategyEntry:
    """One named, parameterizable Byzantine behaviour."""

    name: str
    description: str
    build: _Builder
    #: Wrapper classes this strategy may install (for the lint sweep).
    wrappers: Tuple[type, ...]


STRATEGIES: Dict[str, StrategyEntry] = {}


def register_strategy(name: str, description: str,
                      wrappers: Tuple[type, ...]
                      ) -> Callable[[_Builder], _Builder]:
    def decorate(build: _Builder) -> _Builder:
        if name in STRATEGIES:
            raise ConfigurationError(f"duplicate strategy name {name!r}")
        STRATEGIES[name] = StrategyEntry(name, description, build, wrappers)
        return build

    return decorate


def strategy_names() -> List[str]:
    return sorted(STRATEGIES)


def registered_wrapper_names() -> FrozenSet[str]:
    """Class names of every wrapper reachable from the registry.

    The ``chaos-strategy-registry`` reprolint rule diffs this set
    against the ``ByzantineWrapper`` subclasses found in the source
    tree.
    """
    names = {ByzantineWrapper.__name__}
    for entry in STRATEGIES.values():
        names.update(cls.__name__ for cls in entry.wrappers)
    return frozenset(names)


def _normalize(spec: StrategySpec) -> Tuple[str, Mapping[str, Any]]:
    if isinstance(spec, str):
        return spec, {}
    name = spec.get("name")
    if not isinstance(name, str):
        raise ConfigurationError(f"strategy spec {spec!r} lacks a name")
    params = spec.get("params", {})
    if not isinstance(params, Mapping):
        raise ConfigurationError(f"strategy params must be a mapping: {spec!r}")
    return name, params


def build_strategy(spec: StrategySpec, seed: int = 0) -> StrategyFactory:
    """Resolve a (possibly nested) spec into a ``StrategyFactory``.

    ``seed`` is the master chaos seed scope for this strategy; every
    random choice the built strategy makes derives from it.
    """
    name, params = _normalize(spec)
    entry = STRATEGIES.get(name)
    if entry is None:
        raise ConfigurationError(
            f"unknown strategy {name!r}; known: {', '.join(strategy_names())}")
    return entry.build(params, derive_seed(seed, "strategy", name))


def spec_of(name: str, **params: Any) -> Dict[str, Any]:
    """Convenience spec constructor: ``spec_of('forger', ts_boost=7)``."""
    return {"name": name, "params": params}


# -- omission-flavoured ------------------------------------------------------


@register_strategy("silent", "never answers (NBFT: silent)",
                   (MuteByzantine,))
def _build_silent(params: Mapping[str, Any], seed: int) -> StrategyFactory:
    return lambda inner, config: MuteByzantine(inner)


@register_strategy("stale", "serves reads from a frozen pre-write state",
                   (StaleReplier,))
def _build_stale(params: Mapping[str, Any], seed: int) -> StrategyFactory:
    return lambda inner, config: StaleReplier(inner)


@register_strategy("two-faced",
                   "acks the writer honestly, serves readers stale state",
                   (TwoFaced,))
def _build_two_faced(params: Mapping[str, Any], seed: int) -> StrategyFactory:
    return lambda inner, config: TwoFaced(inner)


# -- fabrication-flavoured ---------------------------------------------------


@register_strategy("forger",
                   "invents a high-timestamp never-written value",
                   (ValueForger,))
def _build_forger(params: Mapping[str, Any], seed: int) -> StrategyFactory:
    value = params.get("value", "FORGED")
    ts_boost = int(params.get("ts_boost", 1000))
    return lambda inner, config: ValueForger(inner, config, value, ts_boost)


@register_strategy("history-forger",
                   "rewrites a specific history slot in regular-protocol acks",
                   (HistoryForger,))
def _build_history_forger(params: Mapping[str, Any],
                          seed: int) -> StrategyFactory:
    target_ts = int(params.get("target_ts", 1))
    value = params.get("value", "REWRITTEN")
    return lambda inner, config: HistoryForger(inner, config, target_ts,
                                               value)


@register_strategy("random-noise",
                   "seeded type-correct junk in every reply (NBFT: noise)",
                   (GarbageByzantine,))
def _build_random_noise(params: Mapping[str, Any],
                        seed: int) -> StrategyFactory:
    return lambda inner, config: GarbageByzantine(inner, config, seed)


@register_strategy("ack-flooder",
                   "spams conflicting acknowledgments per read",
                   (AckFlooder,))
def _build_ack_flooder(params: Mapping[str, Any],
                       seed: int) -> StrategyFactory:
    copies = int(params.get("copies", 3))
    return lambda inner, config: AckFlooder(inner, config, copies)


# -- protocol-aware ----------------------------------------------------------


@register_strategy("equivocation",
                   "shows different states to different readers "
                   "(NBFT: equivocation)",
                   (Equivocator,))
def _build_equivocation(params: Mapping[str, Any],
                        seed: int) -> StrategyFactory:
    return lambda inner, config: Equivocator(inner)


@register_strategy("tsr-inflater",
                   "accuses honest objects via fabricated tsrarray entries",
                   (TsrInflater,))
def _build_tsr_inflater(params: Mapping[str, Any],
                        seed: int) -> StrategyFactory:
    accused = params.get("accused")
    accused_list = [int(i) for i in accused] if accused is not None else None
    return lambda inner, config: TsrInflater(inner, config, accused_list)


@register_strategy("stale-tag",
                   "forges MWMR write tags and vouches for dead leases",
                   (StaleTagForger,))
def _build_stale_tag(params: Mapping[str, Any], seed: int) -> StrategyFactory:
    tag = WriterTag(int(params.get("epoch", 0)),
                    int(params.get("writer_id", 0)))
    value = params.get("value", "STALE-TAG")
    return lambda inner, config: StaleTagForger(inner, config, tag, value)


@register_strategy("delay-then-forge",
                   "withholds replies, then releases them forged",
                   (DelayThenForge, ValueForger))
def _build_delay_then_forge(params: Mapping[str, Any],
                            seed: int) -> StrategyFactory:
    quiet = int(params.get("quiet", 3))
    value = params.get("value", "LATE-FORGE")
    ts_boost = int(params.get("ts_boost", 500))
    return lambda inner, config: DelayThenForge(inner, config, quiet, value,
                                                ts_boost)


@register_strategy("bad-aggregator",
                   "drops and duplicates reply parts within a bundle",
                   (BadAggregator,))
def _build_bad_aggregator(params: Mapping[str, Any],
                          seed: int) -> StrategyFactory:
    drop_p = float(params.get("drop_p", 0.3))
    dup_p = float(params.get("dup_p", 0.3))
    return lambda inner, config: BadAggregator(
        inner, config, derive_seed(seed, "rolls"), drop_p, dup_p)


# -- combinators -------------------------------------------------------------


@register_strategy("sequence",
                   "switch behaviour at delivery thresholds",
                   (SwitchingByzantine,))
def _build_sequence(params: Mapping[str, Any], seed: int) -> StrategyFactory:
    stages = params.get("stages")
    if not stages:
        raise ConfigurationError("sequence strategy needs 'stages'")
    built: List[Tuple[int, Optional[StrategyFactory]]] = []
    for index, stage in enumerate(stages):
        threshold = int(stage.get("after", 0))
        sub = stage.get("strategy")
        factory = (None if sub is None
                   else build_strategy(sub, derive_seed(seed, "stage", index)))
        built.append((threshold, factory))
    return sequence(*built)


@register_strategy("after-step",
                   "honest until a delivery threshold, then corrupt",
                   (SwitchingByzantine,))
def _build_after_step(params: Mapping[str, Any], seed: int) -> StrategyFactory:
    threshold = int(params.get("after", 5))
    sub = params.get("strategy", "forger")
    return after_step(threshold, build_strategy(sub, derive_seed(seed, "sub")))


@register_strategy("probabilistic",
                   "corrupt each delivery with probability p",
                   (ProbabilisticByzantine,))
def _build_probabilistic(params: Mapping[str, Any],
                         seed: int) -> StrategyFactory:
    p = float(params.get("p", 0.5))
    sub = params.get("strategy", "forger")
    return probabilistic(p, build_strategy(sub, derive_seed(seed, "sub")),
                         derive_seed(seed, "coin"))


__all__ = [
    "BadAggregator",
    "DelayThenForge",
    "ProbabilisticByzantine",
    "STRATEGIES",
    "StrategyEntry",
    "StrategySpec",
    "SwitchingByzantine",
    "after_step",
    "build_strategy",
    "probabilistic",
    "register_strategy",
    "registered_wrapper_names",
    "sequence",
    "spec_of",
    "strategy_names",
]
