"""The chaos harness: run a scenario under a fault schedule, gate on
the full checker suite, and report a structured verdict.

A :class:`ChaosScenario` is the *fixed* half of a run -- protocol,
configuration, client workload, checkers, and the generator knobs the
explorer uses.  A :class:`~repro.chaos.schedule.FaultSchedule` is the
*variable* half.  :func:`run_chaos` marries the two deterministically:
the scenario builds its system from the schedule's master seed (so the
delivery scheduler and every strategy RNG derive from it), the injector
fires events at step boundaries, and the verdict carries checker
results, fault counters, and the post-run state fingerprint that
certifies two runs were bit-identical.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from ..config import SystemConfig
from ..core.atomic import AtomicStorageProtocol
from ..core.regular import CachedRegularStorageProtocol
from ..core.safe import SafeStorageProtocol
from ..errors import SimulationError
from ..protocols import StorageProtocol
from ..sim.kernel import OperationHandle
from ..sim.schedulers import RandomScheduler
from ..spec import checkers
from ..spec.checkers import CheckResult
from ..spec.explore import _fingerprint
from ..system import StorageSystem
from ..types import DEFAULT_REGISTER, reset_operation_ids
from .inject import FaultInjector
from .schedule import FaultSchedule
from .seeds import derive_seed

#: One checker: History -> CheckResult.
Checker = Callable[..., CheckResult]


@dataclass(frozen=True)
class WorkloadOp:
    """One scripted client operation, issued at a kernel step count."""

    at_step: int
    kind: str  # "write" | "read"
    client_index: int = 0
    value: Any = None
    register: str = DEFAULT_REGISTER


@dataclass(frozen=True)
class ChaosScenario:
    """The fixed half of a chaos run (the schedule is the variable half).

    ``build`` maps the schedule's master seed to a fresh
    ``StorageSystem`` -- it must thread the seed into every random
    component (use :func:`~repro.chaos.seeds.derive_seed`).  The
    remaining generator knobs bound what the explorer may inject.
    """

    name: str
    description: str
    build: Callable[[int], StorageSystem]
    workload: Tuple[WorkloadOp, ...]
    checkers: Tuple[Checker, ...]
    horizon: int = 4000
    #: Fault kinds the schedule generator may draw for this scenario.
    event_kinds: Tuple[str, ...] = ("partition", "crash", "restore",
                                    "corrupt", "delay", "gray",
                                    "clock_skew", "drop")
    #: Strategy names the generator may pick for ``corrupt`` events.
    strategies: Tuple[str, ...] = ("silent", "stale", "forger",
                                   "equivocation", "random-noise")
    max_events: int = 6
    #: Steps window inside which generated events land.
    event_window: int = 120


@dataclass
class CheckOutcome:
    """One checker's verdict, JSON-friendly."""

    property_name: str
    ok: bool
    checked_reads: int
    violations: List[str] = field(default_factory=list)

    @classmethod
    def of(cls, result: CheckResult) -> "CheckOutcome":
        return cls(property_name=result.property_name, ok=result.ok,
                   checked_reads=result.checked_reads,
                   violations=list(result.violations))

    def to_dict(self) -> Dict[str, Any]:
        return {"property": self.property_name, "ok": self.ok,
                "checked_reads": self.checked_reads,
                "violations": self.violations}


@dataclass
class ChaosVerdict:
    """Everything one chaos run established."""

    scenario: str
    seed: int
    ok: bool
    checks: List[CheckOutcome]
    counters: Dict[str, Any]
    fingerprint: str
    steps: int
    truncated: bool

    def violations(self) -> List[str]:
        return [f"{check.property_name}: {violation}"
                for check in self.checks if not check.ok
                for violation in check.violations]

    def failing_properties(self) -> List[str]:
        return sorted(check.property_name for check in self.checks
                      if not check.ok)

    def summary(self) -> str:
        status = "OK" if self.ok else (
            f"FAIL[{', '.join(self.failing_properties())}]")
        extra = " (truncated)" if self.truncated else ""
        return (f"{self.scenario} seed={self.seed}: {status} "
                f"after {self.steps} steps{extra}, "
                f"{self.counters.get('events_applied', 0)} faults applied")

    def to_dict(self) -> Dict[str, Any]:
        return {
            "scenario": self.scenario,
            "seed": self.seed,
            "ok": self.ok,
            "checks": [check.to_dict() for check in self.checks],
            "counters": self.counters,
            "fingerprint": self.fingerprint,
            "steps": self.steps,
            "truncated": self.truncated,
        }


def run_chaos(scenario: ChaosScenario,
              schedule: FaultSchedule) -> ChaosVerdict:
    """One deterministic chaos run: workload × fault schedule × checkers."""
    # Operation ids double as nonces inside automaton state; restart the
    # stream so the run's fingerprint depends only on (seed, schedule),
    # not on how many operations this process ran before.
    reset_operation_ids()
    system = scenario.build(schedule.seed)
    kernel = system.kernel
    injector = FaultInjector(system, schedule)
    pending_ops: List[WorkloadOp] = sorted(
        scenario.workload, key=lambda op: op.at_step)
    handles: List[OperationHandle] = []
    truncated = False

    def invoke(op: WorkloadOp) -> bool:
        client_busy = any(
            not handle.done
            and handle.operation.client_id.is_writer == (op.kind == "write")
            and handle.operation.client_id.index == op.client_index
            and getattr(handle.operation, "register_id",
                        DEFAULT_REGISTER) == op.register
            for handle in handles)
        if client_busy:
            return False
        if op.kind == "write":
            handles.append(system.invoke_write(
                op.value, register_id=op.register,
                writer_index=op.client_index))
        else:
            handles.append(system.invoke_read(
                reader_index=op.client_index, register_id=op.register))
        return True

    def invoke_due(step: int, force: bool) -> bool:
        progressed = False
        remaining: List[WorkloadOp] = []
        for op in pending_ops:
            if (force or op.at_step <= step) and invoke(op):
                progressed = True
            else:
                remaining.append(op)
        pending_ops[:] = remaining
        return progressed

    while True:
        step = kernel.steps_taken
        injector.apply_due(step)
        invoke_due(step, force=False)
        if step >= scenario.horizon:
            truncated = True
            break
        if (not pending_ops and not injector.pending()
                and all(handle.done for handle in handles)):
            break
        if not kernel.step():
            # Quiescent early: skip time forward to the next workload op
            # or fault event; as a last resort heal every cut so held
            # traffic drains.  Each arm is deterministic.
            if invoke_due(step, force=True):
                continue
            if injector.apply_next():
                continue
            if injector.heal_all():
                continue
            break

    injector.heal_all()
    try:
        kernel.run_to_quiescence(max_steps=scenario.horizon)
    except SimulationError:
        truncated = True

    outcomes = [CheckOutcome.of(checker(system.history))
                for checker in scenario.checkers]
    if not truncated:
        # Liveness only counts once the run drained: a horizon cut-off
        # leaves operations legitimately in flight.
        outcomes.append(CheckOutcome.of(
            checkers.check_wait_freedom(system.history)))
    counters = injector.counters()
    counters.update({
        "messages_sent": kernel.network.total_sent,
        "messages_delivered": kernel.network.total_delivered,
    })
    return ChaosVerdict(
        scenario=scenario.name,
        seed=schedule.seed,
        ok=all(outcome.ok for outcome in outcomes),
        checks=outcomes,
        counters=counters,
        fingerprint=_fingerprint(system).hex(),
        steps=kernel.steps_taken,
        truncated=truncated,
    )


# ---------------------------------------------------------------------------
# Named scenarios
# ---------------------------------------------------------------------------


def _seeded_system(protocol: StorageProtocol, config: SystemConfig,
                   seed: int) -> StorageSystem:
    """The canonical scenario builder: scheduler seeded from the master."""
    return StorageSystem(
        protocol, config,
        scheduler=RandomScheduler(seed=derive_seed(seed, "scheduler")))


def _swmr_regular() -> ChaosScenario:
    config = SystemConfig.optimal(t=1, b=1, num_readers=2)
    return ChaosScenario(
        name="swmr-regular",
        description="single writer, two readers, cached regular protocol",
        build=lambda seed: _seeded_system(
            CachedRegularStorageProtocol(), config, seed),
        workload=(
            WorkloadOp(0, "write", 0, "v0"),
            WorkloadOp(5, "read", 0),
            WorkloadOp(8, "read", 1),
            WorkloadOp(14, "write", 0, "v1"),
            WorkloadOp(20, "read", 0),
            WorkloadOp(26, "write", 0, "v2"),
            WorkloadOp(32, "read", 1),
        ),
        checkers=(checkers.check_safety, checkers.check_regularity),
    )


def _mwmr_atomic() -> ChaosScenario:
    config = SystemConfig.optimal(t=1, b=1, num_readers=2, num_writers=2)
    return ChaosScenario(
        name="mwmr-atomic",
        description="two writers racing tags, atomic protocol",
        build=lambda seed: _seeded_system(
            AtomicStorageProtocol(), config, seed),
        workload=(
            WorkloadOp(0, "write", 0, "a1"),
            WorkloadOp(2, "write", 1, "b1"),
            WorkloadOp(12, "read", 0),
            WorkloadOp(18, "write", 0, "a2"),
            WorkloadOp(24, "read", 1),
            WorkloadOp(30, "write", 1, "b2"),
            WorkloadOp(38, "read", 0),
        ),
        checkers=(checkers.check_mwmr_regularity,
                  checkers.check_mwmr_atomicity),
        event_kinds=("partition", "crash", "restore", "corrupt", "delay",
                     "gray", "clock_skew", "epoch_skew", "drop"),
        strategies=("silent", "stale", "stale-tag", "random-noise",
                    "after-step", "probabilistic"),
    )


def _safe_under_forgery() -> ChaosScenario:
    config = SystemConfig.optimal(t=1, b=1, num_readers=2)
    return ChaosScenario(
        name="safe-under-forgery",
        description="safe protocol against fabrication-heavy strategies",
        build=lambda seed: _seeded_system(
            SafeStorageProtocol(), config, seed),
        workload=(
            WorkloadOp(0, "write", 0, "v0"),
            WorkloadOp(8, "read", 0),
            WorkloadOp(16, "write", 0, "v1"),
            WorkloadOp(24, "read", 1),
        ),
        checkers=(checkers.check_safety,),
        strategies=("forger", "ack-flooder", "delay-then-forge",
                    "bad-aggregator", "two-faced", "random-noise"),
    )


#: The named scenarios the CLI and CI smoke matrix iterate over.
SCENARIOS: Dict[str, Callable[[], ChaosScenario]] = {
    "swmr-regular": _swmr_regular,
    "mwmr-atomic": _mwmr_atomic,
    "safe-under-forgery": _safe_under_forgery,
}


def get_scenario(name: str) -> ChaosScenario:
    try:
        return SCENARIOS[name]()
    except KeyError:
        raise KeyError(
            f"unknown scenario {name!r}; known: "
            f"{', '.join(sorted(SCENARIOS))}") from None


__all__ = [
    "ChaosScenario",
    "ChaosVerdict",
    "CheckOutcome",
    "Checker",
    "SCENARIOS",
    "WorkloadOp",
    "get_scenario",
    "run_chaos",
]
