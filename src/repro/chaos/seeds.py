"""Deterministic seed derivation: one master seed, many independent RNGs.

Every source of randomness in a chaos run -- the delivery scheduler, the
delay models, seeded Byzantine strategies, the schedule generator itself
-- draws its seed from the schedule's single master seed through
:func:`derive_seed`.  Two runs with the same ``(seed, scenario)`` pair
therefore make bit-identical random choices everywhere, which is what
lets :func:`repro.spec.explore._fingerprint` certify trace equality and
lets a shrunk reproducer replay exactly.

Derivation is a SHA-256 of the master seed plus a label path, so sibling
components ("scheduler" vs "delay" vs "strategy/2") get statistically
independent streams without any global registry or ordering dependency.
"""

from __future__ import annotations

import hashlib

#: Seeds are truncated to 63 bits: positive, and stable across platforms.
_SEED_BITS = 63


def derive_seed(master: int, *labels: object) -> int:
    """A child seed for component ``labels`` of a run seeded ``master``.

    ``labels`` is a path of hashable components, e.g.
    ``derive_seed(seed, "strategy", event_index, "garbage")``.  The same
    ``(master, labels)`` always yields the same child seed; different
    labels yield independent ones.
    """
    digest = hashlib.sha256()
    digest.update(str(int(master)).encode("ascii"))
    for label in labels:
        digest.update(b"/")
        digest.update(str(label).encode("utf-8"))
    return int.from_bytes(digest.digest()[:8], "big") >> (64 - _SEED_BITS)


__all__ = ["derive_seed"]
