"""Declarative fault schedules.

A :class:`FaultSchedule` is a seeded list of :class:`FaultEvent`\\ s,
each applied when the deterministic kernel reaches a given *step count*
(steps, not wall time: the simulation is a discrete-event machine, so
"step 37" names the same instant in every run with the same seed).

Schedules are plain data with a stable JSON form, which is what makes
shrinking and replay possible: the explorer serializes a failing
schedule, ddmin deletes events from the JSON-equivalent structure, and
the reproducer file replays bit-identically later.

Event kinds and their params (the schedule DSL):

========== ===========================================================
kind       params
========== ===========================================================
partition  ``groups``: list of lists of pids (``"s1"``, ``"r2"``,
           ``"w"``); unlisted processes talk to everyone.
heal       ``tag`` of a prior partition, or omitted = heal all.
crash      ``object``: index of the object to crash.
restore    ``object``: crashed object resumes; ``amnesia: true``
           restarts it from a fresh automaton (lost volatile state)
           and counts it against the Byzantine budget.
corrupt    ``object`` + ``strategy``: a strategy spec
           (:mod:`repro.chaos.strategies`).
delay      ``model``: ``uniform``/``exponential``/``zero`` with their
           parameters; swaps the kernel's delay model (reorders
           in-flight tails deterministically via derived seeds).
gray       ``objects`` + ``slow``/``fast``: gray failure -- the named
           objects answer, but late (``SlowProcessDelay``).
clock_skew ``delta``: jump the virtual clock forward.
epoch_skew ``register``/``writer_index``/``epoch``: bump a writer's
           timestamp floor, modelling an epoch counter that ran ahead
           (e.g. restored from a stale snapshot elsewhere).
drop       ``object``: drop in-transit traffic to/from a Byzantine
           object (the kernel refuses to drop honest-only traffic).
========== ===========================================================
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Sequence, Tuple

from ..config import SystemConfig
from ..errors import ConfigurationError
from ..types import ProcessId, obj, reader, writer

#: Every kind the injector understands, in canonical order.
EVENT_KINDS: Tuple[str, ...] = (
    "partition", "heal", "crash", "restore", "corrupt", "delay", "gray",
    "clock_skew", "epoch_skew", "drop",
)


def format_pid(pid: ProcessId) -> str:
    """The schedule-DSL name of a process (its repr: ``s1``/``r2``/``w``)."""
    return repr(pid)


def parse_pid(text: str) -> ProcessId:
    """Inverse of :func:`format_pid`."""
    if text == "w":
        return writer(0)
    prefix, digits = text[:1], text[1:]
    if prefix in ("s", "r", "w") and digits.isdigit() and int(digits) >= 1:
        index = int(digits) - 1
        if prefix == "s":
            return obj(index)
        if prefix == "r":
            return reader(index)
        return writer(index)
    raise ConfigurationError(f"cannot parse process id {text!r}")


@dataclass(frozen=True)
class FaultEvent:
    """One scheduled fault, applied at a deterministic kernel step."""

    at_step: int
    kind: str
    params: Mapping[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.kind not in EVENT_KINDS:
            raise ConfigurationError(
                f"unknown fault kind {self.kind!r}; known: "
                f"{', '.join(EVENT_KINDS)}")
        if self.at_step < 0:
            raise ConfigurationError(f"negative at_step: {self.at_step}")

    def to_dict(self) -> Dict[str, Any]:
        out: Dict[str, Any] = {"at_step": self.at_step, "kind": self.kind}
        if self.params:
            out["params"] = dict(self.params)
        return out

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "FaultEvent":
        return cls(at_step=int(data["at_step"]), kind=str(data["kind"]),
                   params=dict(data.get("params", {})))

    def describe(self) -> str:
        inside = ", ".join(f"{k}={v!r}" for k, v in sorted(
            self.params.items()))
        return f"@{self.at_step} {self.kind}({inside})"


@dataclass(frozen=True)
class FaultSchedule:
    """A seeded, ordered fault script for one run.

    ``seed`` is the master seed: the scenario derives its scheduler,
    delay-model, and strategy RNGs from it, so the schedule fully
    determines the run.
    """

    seed: int
    events: Tuple[FaultEvent, ...] = ()
    scenario: str = ""

    def __post_init__(self) -> None:
        # Store events sorted by step (stable on insertion order within a
        # step) so injection order never depends on construction order.
        ordered = tuple(sorted(self.events, key=lambda e: e.at_step))
        object.__setattr__(self, "events", ordered)

    def describe(self) -> str:
        head = f"schedule(seed={self.seed}, scenario={self.scenario!r})"
        if not self.events:
            return head + " [no events]"
        return head + "\n  " + "\n  ".join(e.describe() for e in self.events)

    # -- serialization ----------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        return {
            "seed": self.seed,
            "scenario": self.scenario,
            "events": [event.to_dict() for event in self.events],
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "FaultSchedule":
        return cls(
            seed=int(data["seed"]),
            scenario=str(data.get("scenario", "")),
            events=tuple(FaultEvent.from_dict(e)
                         for e in data.get("events", [])),
        )

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "FaultSchedule":
        return cls.from_dict(json.loads(text))

    # -- derived views ----------------------------------------------------
    def replace_events(self, events: Sequence[FaultEvent]) -> "FaultSchedule":
        return FaultSchedule(seed=self.seed, events=tuple(events),
                             scenario=self.scenario)


def validate_schedule(schedule: FaultSchedule,
                      config: SystemConfig) -> List[str]:
    """Static legality check against the ``(t, b)`` budget.

    Returns human-readable problems instead of raising: the injector
    *skips* illegal events at run time (shrinking may produce schedules
    whose prefix consumed the budget differently), but generators use
    this to avoid emitting them in the first place.
    """
    problems: List[str] = []
    crashed: set = set()
    corrupted: set = set()
    for event in schedule.events:
        kind, params = event.kind, event.params
        if kind == "crash":
            crashed.add(int(params.get("object", -1)))
        elif kind == "corrupt":
            corrupted.add(int(params.get("object", -1)))
        elif kind == "restore" and params.get("amnesia"):
            # Amnesiac restart re-enters as an unknown-state replica:
            # count it like a corruption.
            corrupted.add(int(params.get("object", -1)))
        elif kind == "partition":
            for group in params.get("groups", []):
                for pid in group:
                    parse_pid(str(pid))
    for index in crashed | corrupted:
        if not 0 <= index < config.num_objects:
            problems.append(f"object index {index} out of range")
    if crashed & corrupted:
        problems.append(
            f"objects {sorted(crashed & corrupted)} both crashed and "
            "corrupted")
    if len(corrupted) > config.b:
        problems.append(
            f"{len(corrupted)} corrupted objects exceed b={config.b}")
    if len(crashed | corrupted) > config.t:
        problems.append(
            f"{len(crashed | corrupted)} faulty objects exceed "
            f"t={config.t}")
    return problems


__all__ = [
    "EVENT_KINDS",
    "FaultEvent",
    "FaultSchedule",
    "format_pid",
    "parse_pid",
    "validate_schedule",
]
