"""Crash-during-reconfig: the named service-tier chaos scenario.

The sim-tier scenarios in :mod:`repro.chaos.harness` attack the paper's
protocols directly; this one attacks the *deployment machinery* built
on top of them -- the epoch-fenced shard handoff of
:class:`~repro.service.reconfig.ReconfigCoordinator`.  A seeded RNG
picks a handoff stage (``fenced`` / ``snapshotted`` / ``replayed``) and
a replica index, the coordinator's ``chaos_hook`` kills that replica at
exactly that stage of the first moved key, application write load keeps
hammering the store throughout, and the run is gated on
``check_mwmr_atomicity`` per register plus
``check_snapshot_consistency`` -- the two properties a botched handoff
would break first (a buried write surfaces as a tag inversion; a
half-flipped routing surfaces as an inconsistent cut).

The service tier runs on asyncio, so unlike the sim scenarios this one
carries no state fingerprint -- determinism here means the *fault
choice* is seed-stable, not the interleaving.
"""

from __future__ import annotations

import asyncio
import random
from typing import Any, Dict, Optional

from ..api import Cluster, RetryPolicy
from ..config import SystemConfig
from ..core.atomic import AtomicStorageProtocol
from ..errors import SnapshotContentionError
from ..spec.checkers import (check_mwmr_atomicity, check_per_register,
                             check_snapshot_consistency)
from .harness import ChaosVerdict, CheckOutcome
from .seeds import derive_seed

CRASH_DURING_RECONFIG = "crash-during-reconfig"

_STAGES = ("fenced", "snapshotted", "replayed")


async def _scenario(seed: int) -> ChaosVerdict:
    rng = random.Random(derive_seed(seed, CRASH_DURING_RECONFIG))
    config = SystemConfig.optimal(t=1, b=1, num_readers=2, num_writers=2)
    kill_stage = rng.choice(_STAGES)
    kill_replica = rng.randrange(config.num_objects)
    counters: Dict[str, Any] = {
        "kill_stage": kill_stage,
        "kill_replica": kill_replica,
        "killed": 0,
        "healed": 0,
        "writes_during_handoff": 0,
        "snapshots_taken": 0,
    }
    retry = RetryPolicy(attempts=80, backoff=0.001)
    async with Cluster(AtomicStorageProtocol, config, num_shards=2,
                       seed=derive_seed(seed, "cluster") % (2 ** 31),
                       record_history=True) as cluster:
        session = cluster.session(retry=retry)
        keys = [f"k:{n}" for n in range(10)]
        await session.put_many({key: f"v0:{key}" for key in keys})

        admin = cluster.admin()
        killed_shard: Dict[str, Optional[int]] = {"shard": None}

        def hook(stage: str, key: Optional[str]) -> None:
            # Kill exactly one replica, at the chosen stage of the first
            # key that reaches it.  The source store still holds the key
            # mid-handoff, so that's where the crash lands.
            if (stage == kill_stage and key is not None
                    and not counters["killed"]):
                store = cluster.kv.store_for(key)
                store.crash_object(kill_replica)
                for shard_id, shard in cluster.kv.shards.items():
                    if shard is store:
                        killed_shard["shard"] = shard_id
                counters["killed"] = 1

        admin.coordinator.chaos_hook = hook

        done = asyncio.Event()

        async def write_load() -> None:
            i = 0
            while not done.is_set():
                # The session retry policy must absorb every fence the
                # handoff installs; no FencedWriteError escapes here.
                await session.put(keys[i % len(keys)], f"mid:{i}")
                i += 1
                counters["writes_during_handoff"] = i
                await asyncio.sleep(0.002)

        loader = asyncio.create_task(write_load())
        try:
            report = await admin.add_shard()
        finally:
            done.set()
            await loader
        counters["keys_moved"] = len(report.moved)
        counters["keys_skipped"] = len(report.skipped)

        if counters["killed"] and killed_shard["shard"] in cluster.kv.shards:
            await admin.heal_replica(killed_shard["shard"], kill_replica)
            counters["healed"] = 1

        # Post-handoff traffic + a consistent cut across old and new
        # owners: the snapshot is what check_snapshot_consistency gates.
        await session.put_many({key: f"v1:{key}" for key in keys[:4]})
        snapper = cluster.session(retry=retry)
        try:
            snap = await snapper.snapshot(keys, max_rounds=16)
            counters["snapshots_taken"] = 1
            assert set(snap) == set(keys)
        except SnapshotContentionError:
            pass
        for key in keys:
            await session.get(key)

        history = cluster.history
        assert history is not None
        outcomes = [
            CheckOutcome.of(check_per_register(history,
                                               check_mwmr_atomicity)),
            CheckOutcome.of(check_snapshot_consistency(history)),
        ]
    return ChaosVerdict(
        scenario=CRASH_DURING_RECONFIG,
        seed=seed,
        ok=all(outcome.ok for outcome in outcomes),
        checks=outcomes,
        counters=counters,
        fingerprint="",  # asyncio tier: no deterministic state digest
        steps=0,
        truncated=False,
    )


def run_crash_during_reconfig(seed: int) -> ChaosVerdict:
    """Synchronous entry point (tests, CLI smoke matrix)."""
    return asyncio.run(_scenario(seed))


__all__ = ["CRASH_DURING_RECONFIG", "run_crash_during_reconfig"]
