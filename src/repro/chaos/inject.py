"""The fault injector: applies a :class:`FaultSchedule` to a live system.

The injector owns the mutable side of a chaos run -- active partitions,
the ``(t, b)`` budget consumed so far, and the fault counters the
verdict surfaces.  It is driven by the harness loop: ``apply_due(step)``
fires every event whose step has arrived; ``apply_next()`` force-fires
the next event when the network quiesces early; ``heal_all()`` lifts
every remaining cut before the drain phase.

Illegal events (budget exceeded, unknown targets, double faults) are
*skipped deterministically* and recorded, not raised: shrinking deletes
schedule prefixes, and a suffix must stay runnable however the prefix
changed.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Set, Tuple

from ..config import SystemConfig
from ..sim.delay import (ConstantDelay, DelayModel, ExponentialDelay,
                         SlowProcessDelay, UniformDelay, ZeroDelay)
from ..sim.partitions import Partition
from ..system import StorageSystem
from ..types import DEFAULT_REGISTER, ProcessId, obj
from .schedule import FaultEvent, FaultSchedule, parse_pid
from .seeds import derive_seed
from .strategies import build_strategy


class FaultInjector:
    """Applies schedule events to a ``StorageSystem`` at step boundaries."""

    def __init__(self, system: StorageSystem, schedule: FaultSchedule):
        self.system = system
        self.kernel = system.kernel
        self.config: SystemConfig = system.config
        self.schedule = schedule
        # Events paired with their schedule position: the position seeds
        # per-event RNG scopes, so deleting an earlier event during
        # shrinking does not reshuffle a later event's randomness.
        self._pending: List[Tuple[int, FaultEvent]] = list(
            enumerate(schedule.events))
        self.applied: List[FaultEvent] = []
        self.skipped: List[Tuple[FaultEvent, str]] = []
        self.partitions: Dict[str, Partition] = {}
        self._healed: List[Partition] = []
        self._crashed: Set[int] = set()
        self._corrupted: Set[int] = set()
        self.counts: Dict[str, int] = {
            kind: 0 for kind in ("partition", "heal", "crash", "restore",
                                 "corrupt", "delay", "gray", "clock_skew",
                                 "epoch_skew", "drop")}
        self.dropped_messages = 0

    # -- driving ----------------------------------------------------------
    def pending(self) -> bool:
        return bool(self._pending)

    def apply_due(self, step: int) -> int:
        """Fire every event scheduled at or before ``step``."""
        fired = 0
        while self._pending and self._pending[0][1].at_step <= step:
            index, event = self._pending.pop(0)
            self._apply(index, event)
            fired += 1
        return fired

    def apply_next(self) -> bool:
        """Force-fire the next event regardless of its step.

        Used when the network quiesces before the schedule runs out:
        rather than losing the tail of the schedule, time skips ahead to
        the next event (exactly like a discrete-event simulator jumping
        to the next timer).
        """
        if not self._pending:
            return False
        index, event = self._pending.pop(0)
        self._apply(index, event)
        return True

    def heal_all(self) -> bool:
        """Lift every active partition; True if any cut was healed."""
        healed = False
        for tag in sorted(self.partitions):
            partition = self.partitions[tag]
            if not partition.healed:
                partition.heal()
                healed = True
            self._healed.append(partition)
        self.partitions.clear()
        return healed

    # -- verdict data -----------------------------------------------------
    def partition_blocks(self) -> int:
        total = sum(p.blocked for p in self._healed)
        total += sum(p.blocked for p in self.partitions.values())
        return total

    def counters(self) -> Dict[str, Any]:
        out: Dict[str, Any] = {
            f"events_{kind}": count
            for kind, count in sorted(self.counts.items()) if count}
        out["events_applied"] = len(self.applied)
        out["events_skipped"] = len(self.skipped)
        out["partition_blocks"] = self.partition_blocks()
        out["adversarial_drops"] = self.kernel.dropped_adversarially
        out["byzantine_intercepts"] = self.kernel.byzantine_intercepts()
        return out

    # -- event application ------------------------------------------------
    def _skip(self, event: FaultEvent, reason: str) -> None:
        self.skipped.append((event, reason))

    def _apply(self, index: int, event: FaultEvent) -> None:
        handler = getattr(self, f"_apply_{event.kind}")
        reason: Optional[str] = handler(index, event)
        if reason is None:
            self.applied.append(event)
            self.counts[event.kind] += 1
        else:
            self._skip(event, reason)

    def _apply_partition(self, index: int,
                         event: FaultEvent) -> Optional[str]:
        groups_spec = event.params.get("groups")
        if not groups_spec:
            return "partition without groups"
        groups: List[List[ProcessId]] = [
            [parse_pid(str(name)) for name in group]
            for group in groups_spec]
        # Explicit tags keep cross-run determinism (the module-level
        # fallback counter in sim.partitions is process-global).
        tag = str(event.params.get("tag", f"chaos-cut-{index}"))
        if tag in self.partitions:
            return f"partition tag {tag!r} already active"
        self.partitions[tag] = Partition(self.kernel.network, groups,
                                         tag=tag)
        return None

    def _apply_heal(self, index: int, event: FaultEvent) -> Optional[str]:
        tag = event.params.get("tag")
        if tag is None:
            if not self.heal_all():
                return "no active partition to heal"
            return None
        partition = self.partitions.pop(str(tag), None)
        if partition is None:
            return f"no active partition tagged {tag!r}"
        partition.heal()
        self._healed.append(partition)
        return None

    def _faulty_budget_used(self) -> int:
        return len(self._crashed | self._corrupted)

    def _object_index(self, event: FaultEvent) -> Optional[int]:
        try:
            index = int(event.params["object"])
        except (KeyError, TypeError, ValueError):
            return None
        if not 0 <= index < self.config.num_objects:
            return None
        return index

    def _apply_crash(self, index: int, event: FaultEvent) -> Optional[str]:
        target = self._object_index(event)
        if target is None:
            return "crash needs a valid 'object' index"
        if target in self._crashed:
            return f"s{target + 1} already crashed"
        if target in self._corrupted:
            return f"s{target + 1} is Byzantine; crashing it would free b"
        if self._faulty_budget_used() >= self.config.t:
            return f"crash budget t={self.config.t} exhausted"
        self.kernel.crash(obj(target))
        self._crashed.add(target)
        return None

    def _apply_restore(self, index: int, event: FaultEvent) -> Optional[str]:
        target = self._object_index(event)
        if target is None:
            return "restore needs a valid 'object' index"
        if target not in self._crashed:
            return f"s{target + 1} is not crashed"
        if event.params.get("amnesia"):
            # A restart that lost volatile state is indistinguishable
            # from an arbitrary-state replica: rebuild a fresh automaton
            # and count the object against the Byzantine budget.  The
            # crash slot is NOT freed -- the (t, b) budget is a whole-run
            # bound, not an instantaneous one.
            if len(self._corrupted) >= self.config.b:
                return (f"amnesiac restart needs Byzantine budget; "
                        f"b={self.config.b} exhausted")
            fresh = self.system.protocol.make_objects(self.config)[target]
            self.kernel.restore(obj(target))
            self.kernel.make_byzantine(obj(target), fresh,
                                       note="amnesiac-restart")
            self._corrupted.add(target)
            return None
        self.kernel.restore(obj(target))
        return None

    def _apply_corrupt(self, index: int, event: FaultEvent) -> Optional[str]:
        target = self._object_index(event)
        if target is None:
            return "corrupt needs a valid 'object' index"
        spec = event.params.get("strategy", "forger")
        if target in self._corrupted:
            return f"s{target + 1} already Byzantine"
        if target in self._crashed:
            return f"s{target + 1} is crashed"
        if len(self._corrupted) >= self.config.b:
            return f"Byzantine budget b={self.config.b} exhausted"
        if self._faulty_budget_used() >= self.config.t:
            return f"fault budget t={self.config.t} exhausted"
        factory = build_strategy(
            spec, derive_seed(self.schedule.seed, "event", index))
        honest = self.kernel.object_automaton(obj(target))
        corrupted = factory(honest, self.config)
        self.kernel.make_byzantine(obj(target), corrupted,
                                   note=type(corrupted).__name__)
        self._corrupted.add(target)
        return None

    def _apply_delay(self, index: int, event: FaultEvent) -> Optional[str]:
        model = self._delay_model(event, index)
        if model is None:
            return f"unknown delay model {event.params.get('model')!r}"
        self.kernel.delay_model = model
        return None

    def _delay_model(self, event: FaultEvent,
                     index: int) -> Optional[DelayModel]:
        name = str(event.params.get("model", "uniform"))
        seed = derive_seed(self.schedule.seed, "event", index, "delay")
        if name == "zero":
            return ZeroDelay()
        if name == "constant":
            return ConstantDelay(float(event.params.get("latency", 1.0)))
        if name == "uniform":
            low = float(event.params.get("low", 0.0))
            high = float(event.params.get("high", 2.0))
            return UniformDelay(low, high, seed=seed)
        if name == "exponential":
            base = float(event.params.get("base", 0.1))
            mean = float(event.params.get("mean", 1.0))
            return ExponentialDelay(base, mean, seed=seed)
        return None

    def _apply_gray(self, index: int, event: FaultEvent) -> Optional[str]:
        indices = [int(i) for i in event.params.get("objects", [])]
        if not indices:
            return "gray needs 'objects'"
        if any(not 0 <= i < self.config.num_objects for i in indices):
            return "gray object index out of range"
        slow = float(event.params.get("slow", 50.0))
        fast = float(event.params.get("fast", 1.0))
        self.kernel.delay_model = SlowProcessDelay(
            [obj(i) for i in indices], fast=fast, slow=slow)
        return None

    def _apply_clock_skew(self, index: int,
                          event: FaultEvent) -> Optional[str]:
        delta = float(event.params.get("delta", 10.0))
        if delta < 0:
            return "clock skew must be non-negative"
        self.kernel.advance_clock(delta)
        return None

    def _apply_epoch_skew(self, index: int,
                          event: FaultEvent) -> Optional[str]:
        register = str(event.params.get("register", DEFAULT_REGISTER))
        writer_index = int(event.params.get("writer_index", 0))
        epoch = int(event.params.get("epoch", 0))
        if writer_index >= self.config.num_writers:
            return f"writer index {writer_index} out of range"
        try:
            state = self.system.writer_state_for(register, writer_index)
        except Exception:  # pragma: no cover - defensive
            return f"no writer state for {register!r}"
        if not hasattr(state, "ts"):
            return "writer state has no timestamp floor"
        state.ts = max(state.ts, epoch)
        return None

    def _apply_drop(self, index: int, event: FaultEvent) -> Optional[str]:
        target = self._object_index(event)
        if target is None:
            return "drop needs a valid 'object' index"
        pid = obj(target)
        if pid not in self.kernel.byzantine_processes():
            return f"s{target + 1} is not Byzantine; cannot drop its traffic"
        dropped = self.kernel.drop_messages(
            lambda env: env.sender == pid or env.receiver == pid)
        self.dropped_messages += dropped
        return None


__all__ = ["FaultInjector"]
