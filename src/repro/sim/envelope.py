"""Message envelopes: the unit the simulator schedules.

An :class:`Envelope` is a protocol payload (:class:`repro.messages.Message`
or any immutable value) together with routing and timing metadata.  The set
of undelivered envelopes is exactly the paper's ``mset_{p,q}`` ("messages
sent but not yet received", Section 2.1); the scheduler realizes asynchrony
by choosing delivery order.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any

from ..types import ProcessId

_envelope_ids = itertools.count(1)


@dataclass
class Envelope:
    """A message in transit.

    Attributes:
        sender / receiver: process identities (never forged by the kernel;
            Byzantine *content* is possible, Byzantine *sender spoofing* is
            not, matching reliable point-to-point channels with known
            endpoints).
        payload: the protocol message.
        sent_at: virtual time of the send step.
        available_at: earliest virtual time at which the scheduler may
            deliver it (assigned by the delay model).
        injected: True when an adversary placed the message directly into
            the channel (malicious processes "can put arbitrary messages
            into mset", Section 2.1).
    """

    sender: ProcessId
    receiver: ProcessId
    payload: Any
    sent_at: float = 0.0
    available_at: float = 0.0
    injected: bool = False
    envelope_id: int = field(default_factory=lambda: next(_envelope_ids))

    def __repr__(self) -> str:
        flag = "!" if self.injected else ""
        return (
            f"Envelope#{self.envelope_id}{flag}({self.sender!r}->"
            f"{self.receiver!r}, {self.payload!r})"
        )
