"""Message delay models for the latency experiments (E8).

The paper's correctness story is asynchronous -- delivery order is fully
adversarial and delays carry no meaning.  For the *latency* experiments we
additionally want a quantitative model: each message is assigned a delay
when sent, and the virtual clock advances to the delivery time.  Round-trip
counts then translate into wall-clock-shaped distributions, which is how we
compare 1-round, 2-round and ``(b+1)``-round reads quantitatively.

All models are deterministic given their seed.
"""

from __future__ import annotations

import random
from abc import ABC, abstractmethod
from typing import Dict, Optional, Tuple

from ..types import ProcessId


class DelayModel(ABC):
    """Assigns a non-negative delay to each message at send time."""

    @abstractmethod
    def delay(self, sender: ProcessId, receiver: ProcessId) -> float:
        """Delay (virtual time units) for one message on this link."""

    def reset(self) -> None:
        """Restore the model to its initial (seeded) state."""


class ZeroDelay(DelayModel):
    """All messages available immediately; order is pure scheduler choice."""

    def delay(self, sender: ProcessId, receiver: ProcessId) -> float:
        return 0.0


class ConstantDelay(DelayModel):
    """Fixed one-way latency; models an idealized uniform network."""

    def __init__(self, latency: float = 1.0):
        if latency < 0:
            raise ValueError("latency must be non-negative")
        self.latency = latency

    def delay(self, sender: ProcessId, receiver: ProcessId) -> float:
        return self.latency


class UniformDelay(DelayModel):
    """Delay drawn uniformly from ``[low, high]`` with a seeded RNG."""

    def __init__(self, low: float, high: float, seed: int = 0):
        if not 0 <= low <= high:
            raise ValueError("need 0 <= low <= high")
        self.low = low
        self.high = high
        self._seed = seed
        self._rng = random.Random(seed)

    def delay(self, sender: ProcessId, receiver: ProcessId) -> float:
        return self._rng.uniform(self.low, self.high)

    def reset(self) -> None:
        self._rng = random.Random(self._seed)


class ExponentialDelay(DelayModel):
    """Heavy-ish tail: ``base + Exp(mean)``, the classic WAN-ish model."""

    def __init__(self, base: float = 0.1, mean: float = 1.0, seed: int = 0):
        if base < 0 or mean <= 0:
            raise ValueError("need base >= 0 and mean > 0")
        self.base = base
        self.mean = mean
        self._seed = seed
        self._rng = random.Random(seed)

    def delay(self, sender: ProcessId, receiver: ProcessId) -> float:
        return self.base + self._rng.expovariate(1.0 / self.mean)

    def reset(self) -> None:
        self._rng = random.Random(self._seed)


class PerLinkDelay(DelayModel):
    """Heterogeneous links: explicit per-(sender, receiver) latencies.

    Useful for modelling a slow replica or an asymmetric topology; links
    without an explicit entry fall back to ``default``.
    """

    def __init__(self, default: float = 1.0):
        self.default = default
        self._links: Dict[Tuple[ProcessId, ProcessId], float] = {}

    def set_link(self, sender: ProcessId, receiver: ProcessId,
                 latency: float) -> None:
        if latency < 0:
            raise ValueError("latency must be non-negative")
        self._links[(sender, receiver)] = latency

    def set_symmetric(self, a: ProcessId, c: ProcessId,
                      latency: float) -> None:
        self.set_link(a, c, latency)
        self.set_link(c, a, latency)

    def delay(self, sender: ProcessId, receiver: ProcessId) -> float:
        return self._links.get((sender, receiver), self.default)


class SlowProcessDelay(DelayModel):
    """Messages to/from designated processes take ``slow``; others ``fast``.

    Models a straggler object -- the scenario where waiting for ``S - t``
    acknowledgments (rather than all ``S``) earns its keep.
    """

    def __init__(self, slow_processes, fast: float = 1.0, slow: float = 50.0):
        self.slow_processes = set(slow_processes)
        self.fast = fast
        self.slow = slow

    def delay(self, sender: ProcessId, receiver: ProcessId) -> float:
        if sender in self.slow_processes or receiver in self.slow_processes:
            return self.slow
        return self.fast
