"""Structured run traces.

Every kernel step appends a :class:`TraceEvent`.  Traces serve three
masters:

1. the consistency checkers in :mod:`repro.spec` consume operation
   invocation/response events;
2. the lower-bound driver renders Figure 1 block diagrams from message
   deliveries;
3. failing fuzz runs are reproduced by replaying the recorded delivery
   order (:class:`repro.sim.schedulers.ReplayScheduler`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Iterator, List, Optional

from ..types import ProcessId

# Event kinds
SEND = "send"
DELIVER = "deliver"
INVOKE = "invoke"
RESPOND = "respond"
CRASH = "crash"
RECOVER = "recover"
BYZANTINE = "byzantine"
NOTE = "note"


@dataclass(frozen=True)
class TraceEvent:
    """One observable step of a run."""

    seq: int
    time: float
    kind: str
    process: Optional[ProcessId] = None
    peer: Optional[ProcessId] = None
    payload: Any = None
    detail: str = ""
    envelope_id: Optional[int] = None
    operation_id: Optional[int] = None

    def render(self) -> str:
        clock = f"[{self.time:9.3f}]"
        if self.kind == SEND:
            return (f"{clock} {self.process!r} -> {self.peer!r}  "
                    f"send {self.detail}")
        if self.kind == DELIVER:
            return (f"{clock} {self.process!r} <- {self.peer!r}  "
                    f"recv {self.detail}")
        if self.kind == INVOKE:
            return f"{clock} {self.process!r} invokes {self.detail}"
        if self.kind == RESPOND:
            return f"{clock} {self.process!r} completes {self.detail}"
        if self.kind == CRASH:
            return f"{clock} {self.process!r} CRASHES"
        if self.kind == RECOVER:
            return f"{clock} {self.process!r} RECOVERS: {self.detail}"
        if self.kind == BYZANTINE:
            return f"{clock} {self.process!r} BYZANTINE: {self.detail}"
        return f"{clock} {self.detail}"


class TraceLog:
    """Append-only log with bounded memory and query helpers."""

    def __init__(self, capacity: Optional[int] = None, enabled: bool = True):
        self.capacity = capacity
        self.enabled = enabled
        self._events: List[TraceEvent] = []
        self._seq = 0
        self.dropped = 0

    def append(self, **kwargs: Any) -> Optional[TraceEvent]:
        self._seq += 1
        if not self.enabled:
            return None
        event = TraceEvent(seq=self._seq, **kwargs)
        if self.capacity is not None and len(self._events) >= self.capacity:
            self._events.pop(0)
            self.dropped += 1
        self._events.append(event)
        return event

    # -- queries --------------------------------------------------------------
    def events(self, kind: Optional[str] = None,
               process: Optional[ProcessId] = None,
               predicate: Optional[Callable[[TraceEvent], bool]] = None,
               ) -> List[TraceEvent]:
        out: List[TraceEvent] = []
        for event in self._events:
            if kind is not None and event.kind != kind:
                continue
            if process is not None and event.process != process:
                continue
            if predicate is not None and not predicate(event):
                continue
            out.append(event)
        return out

    def deliveries(self) -> List[TraceEvent]:
        return self.events(kind=DELIVER)

    def delivery_order(self) -> List[int]:
        """Envelope ids in delivery order, for schedule replay."""
        return [e.envelope_id for e in self.deliveries()
                if e.envelope_id is not None]

    def __iter__(self) -> Iterator[TraceEvent]:
        return iter(self._events)

    def __len__(self) -> int:
        return len(self._events)

    def render(self, last: Optional[int] = None) -> str:
        events = self._events if last is None else self._events[-last:]
        return "\n".join(event.render() for event in events)
