"""The deterministic discrete-event simulation kernel.

:class:`SimKernel` executes the step semantics of Section 2.1: computation
proceeds as a sequence of *steps* in which one process atomically receives
a batch of messages (here: one message -- schedulers can emulate batches by
back-to-back deliveries), updates its state, and emits messages.  The
kernel owns:

* the registered :class:`~repro.automata.base.ObjectAutomaton` per base
  object, plus the clients' pending
  :class:`~repro.automata.base.ClientOperation` automata;
* the :class:`~repro.sim.network.Network` of in-transit envelopes;
* the virtual clock, advanced by the delay model;
* fault state -- crashed processes and Byzantine replacements;
* the :class:`~repro.sim.tracing.TraceLog`.

The *adversary API* (crash, replace automaton, inject envelopes, drop
envelopes, holds) grants the simulator exactly the powers the paper's
adversary has, no more: senders cannot be spoofed on behalf of
non-malicious processes, and only messages from/to malicious processes may
be dropped.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional, Set, Tuple

from ..automata.base import (ClientOperation, ObjectAutomaton, Outgoing,
                             Sink, resolve_batch_handler)
from ..config import SystemConfig
from ..errors import (PendingOperationError, ProtocolError,
                      SchedulerExhaustedError, SimulationError)
from ..messages import (Batch, estimate_size, register_of, summarize,
                        unbatch, Message)
from ..types import DEFAULT_REGISTER, ProcessId, obj
from . import tracing
from .delay import DelayModel, ZeroDelay
from .envelope import Envelope
from .network import Network
from .schedulers import FifoScheduler, Scheduler

#: Safety valve for ``run_until`` loops.
DEFAULT_MAX_STEPS = 1_000_000


def _ack_frame(sink: Sink) -> Any:
    """One reply payload for a non-empty ack sink (vector-ack path).

    The sim-side twin of :func:`repro.runtime.hosts.as_frame`, kept
    local because the runtime package transitively imports this module.
    """
    return sink[0] if len(sink) == 1 else Batch(tuple(sink))


class OperationHandle:
    """A client operation as seen from the outside of the kernel."""

    def __init__(self, operation: ClientOperation, invoked_at: float):
        self.operation = operation
        self.invoked_at = invoked_at
        self.completed_at: Optional[float] = None

    @property
    def done(self) -> bool:
        return self.operation.done

    @property
    def result(self) -> Any:
        return self.operation.result

    @property
    def rounds_used(self) -> int:
        return self.operation.rounds_used

    @property
    def latency(self) -> Optional[float]:
        if self.completed_at is None:
            return None
        return self.completed_at - self.invoked_at

    def __repr__(self) -> str:
        state = "done" if self.done else "pending"
        return f"OperationHandle({self.operation.describe()}, {state})"


class _SimVectorGroup:
    """Bookkeeping of one :meth:`SimKernel.invoke_many` batch.

    Mirrors the asyncio vector engine deterministically: one delivery
    step absorbs every part of an envelope, then each touched operation
    advances once and the next round leaves as one :class:`Batch` per
    base object.
    """

    __slots__ = ("client", "dirty")

    def __init__(self, client: ProcessId):
        self.client = client
        #: handles touched by the envelope being delivered.
        self.dirty: List[OperationHandle] = []


class SimKernel:
    """Deterministic simulator for one storage system instance."""

    def __init__(self, config: SystemConfig,
                 scheduler: Optional[Scheduler] = None,
                 delay_model: Optional[DelayModel] = None,
                 trace_capacity: Optional[int] = 100_000,
                 trace_enabled: bool = True):
        self.config = config
        self.scheduler = scheduler or FifoScheduler()
        self.delay_model = delay_model or ZeroDelay()
        self.network = Network()
        self.trace = tracing.TraceLog(capacity=trace_capacity,
                                      enabled=trace_enabled)
        self.now: float = 0.0
        self.steps_taken = 0

        self._envelope_counter = 0
        self._objects: Dict[ProcessId, ObjectAutomaton] = {}
        #: per-object cached batch entry point for vector-ack replies;
        #: keyed by the automaton *instance* so a Byzantine swap
        #: (``replace_automaton``) re-resolves against the new class.
        self._batch_handlers: Dict[ProcessId,
                                   Tuple[ObjectAutomaton, Callable]] = {}
        self._crashed: Set[ProcessId] = set()
        self._byzantine: Set[ProcessId] = set()
        #: per-process strategy note (class name) recorded at corruption
        #: time, and deliveries intercepted by each Byzantine process --
        #: the chaos harness surfaces both in its run verdicts.
        self._byzantine_notes: Dict[ProcessId, str] = {}
        self._byzantine_deliveries: Dict[ProcessId, int] = {}
        #: envelopes removed through the adversary's drop privilege.
        self.dropped_adversarially = 0
        #: pending operations, keyed (client, register): one client may run
        #: one operation per register concurrently (the multiplexing model),
        #: which degenerates to the classic one-op-per-client rule when
        #: everything addresses DEFAULT_REGISTER.
        self._pending_ops: Dict[ProcessId, Dict[str, OperationHandle]] = {}
        #: (client, register) -> vector group driving that register.
        self._vector_groups: Dict[Tuple[ProcessId, str],
                                  _SimVectorGroup] = {}
        self._completion_callbacks: List[Callable[[OperationHandle], None]] = []
        self._invocation_callbacks: List[Callable[[OperationHandle], None]] = []

    # ------------------------------------------------------------------
    # topology
    # ------------------------------------------------------------------
    def register_object(self, automaton: ObjectAutomaton) -> ProcessId:
        """Attach a base object automaton at its declared index."""
        pid = obj(automaton.object_index)
        if pid in self._objects:
            raise SimulationError(f"object {pid!r} registered twice")
        if automaton.object_index >= self.config.num_objects:
            raise SimulationError(
                f"object index {automaton.object_index} out of range for "
                f"S={self.config.num_objects}")
        self._objects[pid] = automaton
        return pid

    def register_objects(self, automata) -> List[ProcessId]:
        return [self.register_object(a) for a in automata]

    def object_automaton(self, pid: ProcessId) -> ObjectAutomaton:
        return self._objects[pid]

    # ------------------------------------------------------------------
    # fault / adversary API
    # ------------------------------------------------------------------
    def crash(self, pid: ProcessId) -> None:
        """Crash a process: it takes no further steps (Section 2.1)."""
        if pid in self._crashed:
            return
        self._crashed.add(pid)
        self.trace.append(time=self.now, kind=tracing.CRASH, process=pid)

    def restore(self, pid: ProcessId) -> None:
        """Lift a crash: the process resumes taking steps.

        Models a crash-*recovery* restart whose state survived (the
        multiproc tier's WAL replay brings a replica back exactly like
        this): the automaton's state is untouched and every envelope
        that stayed in transit while the process was down becomes
        deliverable again.  A restart that *lost* state is not a crash
        fault -- model it as a Byzantine replacement
        (:meth:`make_byzantine` with a fresh automaton), which the
        chaos harness counts against ``b``.
        """
        if pid not in self._crashed:
            return
        self._crashed.discard(pid)
        self.trace.append(time=self.now, kind=tracing.RECOVER, process=pid,
                          detail="state intact")

    def is_alive(self, pid: ProcessId) -> bool:
        return pid not in self._crashed

    def crashed_processes(self) -> Set[ProcessId]:
        return set(self._crashed)

    def advance_clock(self, delta: float) -> None:
        """Skew the virtual clock forward (chaos ``clock_skew`` events).

        Only forward: the kernel's invariant is that ``now`` never
        decreases.  Every in-transit envelope whose ``available_at``
        falls inside the skipped window becomes immediately deliverable
        -- the discrete-event analogue of a clock jumping over pending
        timers.
        """
        if delta < 0:
            raise SimulationError("clock skew must be non-negative")
        self.now += delta

    def make_byzantine(self, pid: ProcessId,
                       automaton: ObjectAutomaton,
                       note: str = "") -> None:
        """Replace an object's automaton with an arbitrary-behaviour one."""
        if not pid.is_object:
            raise SimulationError("only base objects may turn Byzantine "
                                  "in this model")
        if pid not in self._objects:
            raise SimulationError(f"unknown object {pid!r}")
        self._objects[pid] = automaton
        self._byzantine.add(pid)
        self._byzantine_notes[pid] = note or type(automaton).__name__
        self._byzantine_deliveries.setdefault(pid, 0)
        self.trace.append(time=self.now, kind=tracing.BYZANTINE, process=pid,
                          detail=note or type(automaton).__name__)

    def byzantine_processes(self) -> Set[ProcessId]:
        return set(self._byzantine)

    def byzantine_intercepts(self) -> Dict[str, int]:
        """Deliveries intercepted per Byzantine process, keyed
        ``"<pid>:<strategy note>"`` -- the per-strategy counters the
        chaos harness folds into its run verdicts."""
        return {
            f"{pid!r}:{self._byzantine_notes.get(pid, '?')}": count
            for pid, count in sorted(self._byzantine_deliveries.items())
        }

    def inject(self, sender: ProcessId, receiver: ProcessId,
               payload: Any) -> Envelope:
        """Place a forged message in transit on behalf of ``sender``.

        Section 2.1 allows malicious processes to put arbitrary messages
        into their channels; the kernel therefore requires that ``sender``
        has been marked Byzantine (the lower-bound driver marks objects
        before forging on their behalf).
        """
        if sender not in self._byzantine:
            raise SimulationError(
                f"refusing to forge a message from non-malicious {sender!r}")
        return self._submit(sender, receiver, payload, injected=True)

    def drop_messages(self, predicate) -> int:
        """Adversarially remove in-transit messages involving malicious
        processes (their Section 2.1 privilege)."""

        def guarded(env: Envelope) -> bool:
            involved = (env.sender in self._byzantine
                        or env.receiver in self._byzantine)
            return involved and predicate(env)

        dropped = self.network.drop_matching(guarded)
        self.dropped_adversarially += dropped
        return dropped

    # ------------------------------------------------------------------
    # client operations
    # ------------------------------------------------------------------
    def on_invoke(self, callback: Callable[[OperationHandle], None]) -> None:
        self._invocation_callbacks.append(callback)

    def on_complete(self, callback: Callable[[OperationHandle], None]) -> None:
        self._completion_callbacks.append(callback)

    def invoke(self, operation: ClientOperation) -> OperationHandle:
        """Invoke an operation on its client; returns a handle."""
        client = operation.client_id
        register_id = getattr(operation, "register_id", DEFAULT_REGISTER)
        if not client.is_client:
            raise ProtocolError(f"{client!r} is not a client")
        if client in self._crashed:
            raise ProtocolError(f"client {client!r} has crashed")
        per_register = self._pending_ops.setdefault(client, {})
        existing = per_register.get(register_id)
        if existing is not None and not existing.done:
            raise PendingOperationError(
                f"client {client!r} already has {existing!r} in progress "
                f"on register {register_id!r}")
        handle = OperationHandle(operation, invoked_at=self.now)
        per_register[register_id] = handle
        self.trace.append(time=self.now, kind=tracing.INVOKE, process=client,
                          operation_id=operation.operation_id,
                          detail=operation.describe())
        for callback in self._invocation_callbacks:
            callback(handle)
        self._dispatch_outgoing(operation, operation.start())
        self._check_completion(client, handle)
        return handle

    def invoke_many(self, operations: List[ClientOperation]
                    ) -> List[OperationHandle]:
        """Invoke a batch of same-client operations as *vector rounds*.

        The deterministic twin of the asyncio vector engine: every round
        of the batch leaves as one :class:`~repro.messages.Batch` per
        base object, each delivery step absorbs a whole inbound frame
        and advances the touched operations once.  Per-operation
        ``messages_sent``/``bytes_sent`` counters are not maintained for
        vector rounds (frames are shared across the batch); the
        network-level totals in :meth:`metrics` account for everything.
        """
        operations = list(operations)
        if not operations:
            return []
        client = operations[0].client_id
        if not client.is_client:
            raise ProtocolError(f"{client!r} is not a client")
        if client in self._crashed:
            raise ProtocolError(f"client {client!r} has crashed")
        per_register = self._pending_ops.setdefault(client, {})
        batch_registers: Set[str] = set()
        for operation in operations:
            if operation.client_id != client:
                raise ProtocolError(
                    "invoke_many requires same-client operations")
            register_id = operation.register_id
            if register_id in batch_registers:
                raise PendingOperationError(
                    f"two operations in one invoke_many batch address "
                    f"register {register_id!r}")
            batch_registers.add(register_id)
            existing = per_register.get(register_id)
            if existing is not None and not existing.done:
                raise PendingOperationError(
                    f"client {client!r} already has {existing!r} in "
                    f"progress on register {register_id!r}")
        group = _SimVectorGroup(client)
        handles: List[OperationHandle] = []
        for operation in operations:
            handle = OperationHandle(operation, invoked_at=self.now)
            per_register[operation.register_id] = handle
            self._vector_groups[(client, operation.register_id)] = group
            self.trace.append(time=self.now, kind=tracing.INVOKE,
                              process=client,
                              operation_id=operation.operation_id,
                              detail=operation.describe())
            for callback in self._invocation_callbacks:
                callback(handle)
            handles.append(handle)
        sink: Sink = []
        leftovers: Outgoing = []
        for operation in operations:
            operation.start_vector(sink, leftovers)
        self._dispatch_vector(client, sink, leftovers)
        for handle in handles:
            self._check_completion(client, handle)
            if handle.done:
                self._vector_groups.pop(
                    (client, handle.operation.register_id), None)
        return handles

    def _dispatch_vector(self, client: ProcessId, sink: Sink,
                         leftovers: Outgoing) -> None:
        if sink:
            payload: Any = sink[0] if len(sink) == 1 else Batch(tuple(sink))
            for i in range(self.config.num_objects):
                self._submit(client, obj(i), payload)
        for receiver, payload in leftovers:
            self._submit(client, receiver, payload)

    def pending_operation(self, client: ProcessId,
                          register_id: str = DEFAULT_REGISTER
                          ) -> Optional[OperationHandle]:
        handle = self._pending_ops.get(client, {}).get(register_id)
        if handle is not None and not handle.done:
            return handle
        return None

    def pending_operations(self, client: ProcessId) -> List[OperationHandle]:
        """All in-flight operations of one client, across registers."""
        return [handle for handle in self._pending_ops.get(client, {}).values()
                if not handle.done]

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def step(self) -> bool:
        """Deliver one message; returns False when nothing is deliverable.

        If nothing is deliverable *now* but a delayed envelope exists, the
        virtual clock advances to its availability time first.
        """
        deliverable = self.network.deliverable(self.now, self.is_alive)
        if not deliverable:
            future = self.network.earliest_future_time(self.is_alive)
            if future is None or future <= self.now:
                return False
            self.now = future
            deliverable = self.network.deliverable(self.now, self.is_alive)
            if not deliverable:
                return False
        envelope = self.scheduler.choose(deliverable)
        self._deliver(envelope)
        return True

    def run_until(self, predicate: Callable[[], bool],
                  max_steps: int = DEFAULT_MAX_STEPS) -> int:
        """Run steps until ``predicate()``; returns steps taken.

        Raises :class:`SchedulerExhaustedError` if the network quiesces
        first and :class:`SimulationError` when ``max_steps`` is exceeded
        (which usually means a liveness bug or an unfair scheduler).
        """
        taken = 0
        while not predicate():
            if taken >= max_steps:
                raise SimulationError(
                    f"run_until exceeded {max_steps} steps; "
                    f"pending={self.network.pending_count()}, "
                    f"holds={self.network.active_holds()}")
            if not self.step():
                raise SchedulerExhaustedError(
                    "network quiesced before the goal predicate held; "
                    f"active holds: {self.network.active_holds()}, "
                    f"crashed: {sorted(map(repr, self._crashed))}")
            taken += 1
        return taken

    def run_to_quiescence(self, max_steps: int = DEFAULT_MAX_STEPS) -> int:
        """Deliver until nothing is deliverable; returns steps taken."""
        taken = 0
        while self.step():
            taken += 1
            if taken >= max_steps:
                raise SimulationError(
                    f"no quiescence within {max_steps} steps")
        return taken

    def deliver_by_id(self, envelope_id: int) -> bool:
        """Deliver one specific in-transit envelope (schedule exploration).

        Returns False when no deliverable envelope has that id.  Used by
        :mod:`repro.spec.explore` to branch over scheduler choices from a
        copied kernel state.
        """
        for envelope in self.network.deliverable(self.now, self.is_alive):
            if envelope.envelope_id == envelope_id:
                self._deliver(envelope)
                return True
        return False

    def run_operation(self, operation: ClientOperation,
                      max_steps: int = DEFAULT_MAX_STEPS) -> OperationHandle:
        """Invoke and run until the operation completes."""
        handle = self.invoke(operation)
        if not handle.done:
            self.run_until(lambda: handle.done, max_steps=max_steps)
        return handle

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _submit(self, sender: ProcessId, receiver: ProcessId, payload: Any,
                injected: bool = False) -> Envelope:
        size = (payload.estimated_size()
                if isinstance(payload, Message) else estimate_size(payload))
        # Envelope ids are kernel-local and deterministic so a recorded
        # delivery order can be replayed against a fresh system.
        self._envelope_counter += 1
        envelope = Envelope(
            sender=sender,
            receiver=receiver,
            payload=payload,
            sent_at=self.now,
            available_at=self.now + self.delay_model.delay(sender, receiver),
            injected=injected,
            envelope_id=self._envelope_counter,
        )
        self.network.submit(envelope, size_bytes=size)
        self.trace.append(time=self.now, kind=tracing.SEND, process=sender,
                          peer=receiver, payload=payload,
                          envelope_id=envelope.envelope_id,
                          detail=self._summary(payload))
        return envelope

    @staticmethod
    def _summary(payload: Any) -> str:
        if isinstance(payload, Message):
            return summarize(payload)
        return repr(payload)

    def _dispatch_outgoing(self, operation: ClientOperation,
                           outgoing: Outgoing) -> None:
        for receiver, payload in outgoing:
            envelope = self._submit(operation.client_id, receiver, payload)
            operation.messages_sent += 1
            operation.bytes_sent += (
                payload.estimated_size()
                if isinstance(payload, Message) else estimate_size(payload))
            del envelope

    def _batch_handler_for(self, receiver: ProcessId,
                           automaton: ObjectAutomaton) -> Callable:
        cached = self._batch_handlers.get(receiver)
        if cached is None or cached[0] is not automaton:
            handler = resolve_batch_handler(automaton)
            self._batch_handlers[receiver] = (automaton, handler)
            return handler
        return cached[1]

    def _deliver(self, envelope: Envelope) -> None:
        self.network.remove(envelope)
        self.now = max(self.now, envelope.available_at)
        self.steps_taken += 1
        receiver = envelope.receiver
        self.trace.append(time=self.now, kind=tracing.DELIVER,
                          process=receiver, peer=envelope.sender,
                          payload=envelope.payload,
                          envelope_id=envelope.envelope_id,
                          detail=self._summary(envelope.payload))
        if receiver.is_object:
            automaton = self._objects.get(receiver)
            if automaton is None:
                raise SimulationError(f"no automaton for {receiver!r}")
            if receiver in self._byzantine:
                self._byzantine_deliveries[receiver] = (
                    self._byzantine_deliveries.get(receiver, 0) + 1)
            if isinstance(envelope.payload, Batch):
                # A batched envelope is one atomic delivery step -- and
                # its acks leave the same way: every reply to the sender
                # collects into one sink and ships as a single Batch
                # frame (the vector-ack path), instead of one envelope
                # per register.  Singleton deliveries keep the plain
                # per-message path below, so adversary plans and message
                # counts over unbatched traffic are unchanged.
                handler = self._batch_handler_for(receiver, automaton)
                sink: Sink = []
                leftovers = handler(envelope.sender,
                                    unbatch(envelope.payload), sink)
                if sink:
                    self._submit(receiver, envelope.sender,
                                 _ack_frame(sink))
                for reply_receiver, payload in leftovers or []:
                    self._submit(receiver, reply_receiver, payload)
                return
            for part in unbatch(envelope.payload):
                replies = automaton.on_message(envelope.sender, part)
                for reply_receiver, payload in replies or []:
                    self._submit(receiver, reply_receiver, payload)
            return
        # Client delivery: route each part to the pending operation of the
        # register it addresses; clients with no pending operation on that
        # register simply ignore stale traffic.  Parts addressed to a
        # vector group are absorbed first and the touched operations
        # advance once at the end of the (atomic) delivery step.
        per_register = self._pending_ops.get(receiver)
        if per_register is None:
            return
        vector_groups = self._vector_groups
        touched: List[_SimVectorGroup] = []
        for part in unbatch(envelope.payload):
            register_id = register_of(part)
            handle = per_register.get(register_id)
            if handle is None or handle.done:
                continue
            operation = handle.operation
            group = vector_groups.get((receiver, register_id))
            if group is not None:
                operation.absorb(envelope.sender, part)
                if handle not in group.dirty:
                    group.dirty.append(handle)
                    if len(group.dirty) == 1:
                        touched.append(group)
                continue
            outgoing = operation.on_message(envelope.sender, part)
            self._dispatch_outgoing(operation, outgoing or [])
            self._check_completion(receiver, handle)
        for group in touched:
            sink: Sink = []
            leftovers: Outgoing = []
            for handle in group.dirty:
                if not handle.done:
                    handle.operation.advance(sink, leftovers)
            self._dispatch_vector(receiver, sink, leftovers)
            for handle in group.dirty:
                self._check_completion(receiver, handle)
                if handle.done:
                    vector_groups.pop(
                        (receiver, handle.operation.register_id), None)
            group.dirty.clear()

    def _check_completion(self, client: ProcessId,
                          handle: OperationHandle) -> None:
        if not handle.done or handle.completed_at is not None:
            return
        handle.completed_at = self.now
        self.trace.append(time=self.now, kind=tracing.RESPOND, process=client,
                          operation_id=handle.operation.operation_id,
                          detail=(f"{handle.operation.describe()} -> "
                                  f"{handle.operation.result!r}"))
        for callback in self._completion_callbacks:
            callback(handle)
        # The completed handle intentionally stays in its slot until the
        # next operation on that (client, register) replaces it: schedule
        # exploration fingerprints pending-op internals, and the last
        # completed operation's state is what distinguishes terminal
        # states of different delivery orders.  Retention is O(registers),
        # the same order as the per-register client states themselves.

    # ------------------------------------------------------------------
    # metrics
    # ------------------------------------------------------------------
    def metrics(self) -> Dict[str, Any]:
        return {
            "virtual_time": self.now,
            "steps": self.steps_taken,
            "messages_sent": self.network.total_sent,
            "messages_delivered": self.network.total_delivered,
            "bytes_sent": self.network.total_bytes_sent,
            "in_transit": self.network.pending_count(),
            "crashed": len(self._crashed),
            "byzantine": len(self._byzantine),
            "dropped_adversarially": self.dropped_adversarially,
        }
