"""Network partitions, expressed as holds.

The paper's model has reliable channels, so a "partition" is really
unbounded asynchrony: messages crossing the cut stay in transit until the
partition *heals*.  :class:`Partition` packages that as a first-class
scenario tool -- split the processes into groups, run traffic, heal,
watch the protocol absorb the backlog.

A client partitioned away from a quorum of objects simply cannot finish
operations until healing (that is wait-freedom's asynchrony caveat, not a
liveness bug); a client that retains ``S - t`` objects keeps working.
"""

from __future__ import annotations

import itertools
from typing import Dict, Iterable, List, Optional, Sequence

from ..errors import SimulationError
from ..types import ProcessId
from .network import Network

_partition_tags = itertools.count(1)


class Partition:
    """A (possibly asymmetric) communication cut between process groups."""

    def __init__(self, network: Network,
                 groups: Sequence[Iterable[ProcessId]],
                 tag: Optional[str] = None):
        """Processes in different ``groups`` cannot exchange messages.

        Processes not listed in any group can talk to everyone (handy for
        modelling a cut that only affects some replicas).
        """
        self.network = network
        self.tag = tag or f"partition-{next(_partition_tags)}"
        self._group_of: Dict[ProcessId, int] = {}
        for index, group in enumerate(groups):
            for pid in group:
                if pid in self._group_of:
                    raise SimulationError(
                        f"{pid!r} appears in two partition groups")
                self._group_of[pid] = index
        self.healed = False
        #: times this cut held an envelope back (eligibility checks that
        #: matched, not distinct envelopes -- the kernel re-polls holds
        #: every step).  Chaos verdicts surface it as evidence the
        #: partition actually bit.
        self.blocked = 0
        network.hold(self.tag, self._blocks)

    def _blocks(self, envelope) -> bool:
        sender_group = self._group_of.get(envelope.sender)
        receiver_group = self._group_of.get(envelope.receiver)
        if sender_group is None or receiver_group is None:
            return False
        if sender_group != receiver_group:
            self.blocked += 1
            return True
        return False

    def heal(self) -> None:
        """Remove the cut; everything held becomes deliverable again."""
        if not self.healed:
            self.network.release(self.tag)
            self.healed = True

    def __enter__(self) -> "Partition":
        return self

    def __exit__(self, *exc_info) -> None:
        self.heal()


def isolate(network: Network, victims: Iterable[ProcessId],
            everyone: Iterable[ProcessId],
            tag: Optional[str] = None) -> Partition:
    """Cut ``victims`` off from all other listed processes."""
    victims = list(victims)
    rest = [pid for pid in everyone if pid not in victims]
    return Partition(network, [victims, rest], tag=tag)
