"""Delivery schedulers: the adversary's steering wheel.

In an asynchronous system the *only* power the benign environment has is
choosing which in-transit message is delivered next.  A
:class:`Scheduler` makes that choice; swapping schedulers turns one
protocol run into a different legal run of the same algorithm, which is how
the test-suite explores the schedule space:

* :class:`FifoScheduler` -- deliver in send order (the "nice" network);
* :class:`RandomScheduler` -- seeded uniform choice (schedule fuzzing);
* :class:`EarliestDeliveryScheduler` -- respect the delay model's
  timestamps, FIFO within a tick (used for latency experiments);
* :class:`TargetedScheduler` -- priority rules scripted by adversarial
  tests ("starve reader acks from s3 as long as legally possible").
"""

from __future__ import annotations

import random
from abc import ABC, abstractmethod
from typing import Callable, List, Optional, Sequence, Tuple

from .envelope import Envelope


class Scheduler(ABC):
    """Chooses the next envelope to deliver among the eligible ones."""

    @abstractmethod
    def choose(self, deliverable: Sequence[Envelope]) -> Envelope:
        """Pick one envelope; ``deliverable`` is never empty."""

    def reset(self) -> None:
        """Restore initial (seeded) state, if any."""


class FifoScheduler(Scheduler):
    """Deliver the oldest envelope first (by envelope id)."""

    def choose(self, deliverable: Sequence[Envelope]) -> Envelope:
        return min(deliverable, key=lambda env: env.envelope_id)


class LifoScheduler(Scheduler):
    """Deliver the *newest* envelope first.

    Surprisingly effective at exposing stale-reply handling bugs: acks from
    earlier rounds arrive after the later rounds' traffic.
    """

    def choose(self, deliverable: Sequence[Envelope]) -> Envelope:
        return max(deliverable, key=lambda env: env.envelope_id)


class RandomScheduler(Scheduler):
    """Seeded uniform random delivery order."""

    def __init__(self, seed: int = 0):
        self._seed = seed
        self._rng = random.Random(seed)

    def choose(self, deliverable: Sequence[Envelope]) -> Envelope:
        return self._rng.choice(list(deliverable))

    def reset(self) -> None:
        self._rng = random.Random(self._seed)


class EarliestDeliveryScheduler(Scheduler):
    """Respect delay-model timestamps; ties broken FIFO.

    With this scheduler and a metric delay model the virtual clock behaves
    like wall-clock time, which is what the latency experiments measure.
    """

    def choose(self, deliverable: Sequence[Envelope]) -> Envelope:
        return min(deliverable,
                   key=lambda env: (env.available_at, env.envelope_id))


PriorityRule = Callable[[Envelope], Optional[int]]


class TargetedScheduler(Scheduler):
    """Scripted priorities for adversarial schedules.

    Rules map an envelope to a priority (lower delivers first) or ``None``
    (no opinion).  The first rule with an opinion wins; envelopes no rule
    cares about get priority ``default_priority`` and FIFO order within a
    class.  Combined with network holds this expresses every schedule used
    in the paper's proofs.
    """

    def __init__(self, rules: Optional[List[PriorityRule]] = None,
                 default_priority: int = 100):
        self.rules: List[PriorityRule] = list(rules or [])
        self.default_priority = default_priority

    def add_rule(self, rule: PriorityRule) -> None:
        self.rules.append(rule)

    def _priority(self, env: Envelope) -> int:
        for rule in self.rules:
            verdict = rule(env)
            if verdict is not None:
                return verdict
        return self.default_priority

    def choose(self, deliverable: Sequence[Envelope]) -> Envelope:
        return min(deliverable,
                   key=lambda env: (self._priority(env), env.envelope_id))


def delay_link_rule(sender_pred, receiver_pred,
                    priority: int = 10_000) -> PriorityRule:
    """Rule: deprioritize traffic on links matching the two predicates."""

    def rule(env: Envelope) -> Optional[int]:
        if sender_pred(env.sender) and receiver_pred(env.receiver):
            return priority
        return None

    return rule


class ReplayScheduler(Scheduler):
    """Replay an explicit envelope-id order, then fall back to FIFO.

    Used to reproduce a failing schedule captured from a fuzzing run: the
    trace records delivery order as envelope ids; feeding those ids back
    deterministically re-executes the same run.
    """

    def __init__(self, order: Sequence[int]):
        self._order = list(order)
        self._cursor = 0

    def choose(self, deliverable: Sequence[Envelope]) -> Envelope:
        while self._cursor < len(self._order):
            wanted = self._order[self._cursor]
            match = next(
                (env for env in deliverable if env.envelope_id == wanted),
                None,
            )
            if match is None:
                # The wanted envelope is not deliverable yet; deliver the
                # FIFO choice without consuming the cursor.
                return min(deliverable, key=lambda env: env.envelope_id)
            self._cursor += 1
            return match
        return min(deliverable, key=lambda env: env.envelope_id)

    def reset(self) -> None:
        self._cursor = 0
