"""Deterministic discrete-event simulation of the paper's system model.

The subpackage realizes Section 2 of the paper: asynchronous reliable
point-to-point channels between clients (one writer, R readers) and S base
objects, with an adversary that controls scheduling, crashes up to ``t``
objects and corrupts up to ``b`` of them arbitrarily.

Public surface:

* :class:`SimKernel` -- the simulator;
* :class:`Envelope`, :class:`Network` -- messages in transit and holds;
* schedulers (:class:`FifoScheduler`, :class:`RandomScheduler`,
  :class:`LifoScheduler`, :class:`EarliestDeliveryScheduler`,
  :class:`TargetedScheduler`, :class:`ReplayScheduler`);
* delay models (:class:`ZeroDelay`, :class:`ConstantDelay`,
  :class:`UniformDelay`, :class:`ExponentialDelay`, :class:`PerLinkDelay`,
  :class:`SlowProcessDelay`);
* :class:`TraceLog` and friends.
"""

from .delay import (ConstantDelay, DelayModel, ExponentialDelay, PerLinkDelay,
                    SlowProcessDelay, UniformDelay, ZeroDelay)
from .envelope import Envelope
from .kernel import DEFAULT_MAX_STEPS, OperationHandle, SimKernel
from .network import Network
from .partitions import Partition, isolate
from .schedulers import (EarliestDeliveryScheduler, FifoScheduler,
                         LifoScheduler, RandomScheduler, ReplayScheduler,
                         Scheduler, TargetedScheduler, delay_link_rule)
from .tracing import TraceEvent, TraceLog

__all__ = [
    "SimKernel",
    "OperationHandle",
    "DEFAULT_MAX_STEPS",
    "Envelope",
    "Network",
    "Partition",
    "isolate",
    "Scheduler",
    "FifoScheduler",
    "LifoScheduler",
    "RandomScheduler",
    "EarliestDeliveryScheduler",
    "TargetedScheduler",
    "ReplayScheduler",
    "delay_link_rule",
    "DelayModel",
    "ZeroDelay",
    "ConstantDelay",
    "UniformDelay",
    "ExponentialDelay",
    "PerLinkDelay",
    "SlowProcessDelay",
    "TraceEvent",
    "TraceLog",
]
