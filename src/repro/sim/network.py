"""The in-transit message store with adversarial *hold* rules.

:class:`Network` owns every sent-but-undelivered :class:`Envelope` -- the
union of the paper's ``mset`` channel states.  Reliable channels mean
nothing is ever dropped by the network itself; adversarial asynchrony is
expressed as *holds*: named predicates that make matching envelopes
temporarily undeliverable.  The lower-bound driver (Section 3's run1..run5)
is written entirely in terms of holds ("all messages sent by the writer to
T1 remain in transit") plus crashes.

Messages to *crashed* processes remain in the store forever -- exactly the
"in transit at the end of a partial run" notion of Section 2.1.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Iterable, List, Optional

from ..errors import SimulationError
from ..types import ProcessId
from .envelope import Envelope

HoldPredicate = Callable[[Envelope], bool]


class Network:
    """All undelivered envelopes plus delivery-eligibility logic."""

    def __init__(self) -> None:
        self._in_transit: List[Envelope] = []
        self._holds: Dict[str, HoldPredicate] = {}
        self.total_sent = 0
        self.total_delivered = 0
        self.total_bytes_sent = 0

    # -- sending -----------------------------------------------------------
    def submit(self, envelope: Envelope, size_bytes: int = 0) -> None:
        self._in_transit.append(envelope)
        self.total_sent += 1
        self.total_bytes_sent += size_bytes

    # -- holds ---------------------------------------------------------------
    def hold(self, tag: str, predicate: HoldPredicate) -> None:
        """Make envelopes matching ``predicate`` undeliverable until release.

        A hold applies both to envelopes already in transit and to future
        ones.  Tags must be unique among active holds.
        """
        if tag in self._holds:
            raise SimulationError(f"hold tag already active: {tag!r}")
        self._holds[tag] = predicate

    def release(self, tag: str) -> None:
        if tag not in self._holds:
            raise SimulationError(f"no such hold: {tag!r}")
        del self._holds[tag]

    def release_all(self) -> None:
        self._holds.clear()

    def active_holds(self) -> List[str]:
        return sorted(self._holds)

    def is_held(self, envelope: Envelope) -> bool:
        return any(pred(envelope) for pred in self._holds.values())

    # -- common hold constructors ---------------------------------------------
    @staticmethod
    def link_predicate(sender: Optional[ProcessId] = None,
                       receiver: Optional[ProcessId] = None,
                       payload_kind: Optional[type] = None) -> HoldPredicate:
        """Predicate matching a link and optionally a payload type."""

        def predicate(env: Envelope) -> bool:
            if sender is not None and env.sender != sender:
                return False
            if receiver is not None and env.receiver != receiver:
                return False
            if payload_kind is not None and not isinstance(
                    env.payload, payload_kind):
                return False
            return True

        return predicate

    # -- delivery ----------------------------------------------------------
    def deliverable(self, now: float,
                    alive: Callable[[ProcessId], bool]) -> List[Envelope]:
        """Envelopes eligible for delivery at virtual time ``now``.

        An envelope is eligible when its receiver is alive (crashed
        processes take no steps), its delay has elapsed and no hold matches.
        """
        return [
            env for env in self._in_transit
            if alive(env.receiver) and env.available_at <= now
            and not self.is_held(env)
        ]

    def earliest_future_time(
            self, alive: Callable[[ProcessId], bool]) -> Optional[float]:
        """Next ``available_at`` of a non-held envelope, or ``None``.

        Lets the kernel advance the virtual clock when nothing is
        deliverable *yet* but something will become deliverable.
        """
        candidates = [
            env.available_at for env in self._in_transit
            if alive(env.receiver) and not self.is_held(env)
        ]
        return min(candidates) if candidates else None

    def remove(self, envelope: Envelope) -> None:
        self._in_transit.remove(envelope)
        self.total_delivered += 1

    # -- introspection -------------------------------------------------------
    def in_transit(self) -> List[Envelope]:
        """Snapshot (copy) of every undelivered envelope."""
        return list(self._in_transit)

    def in_transit_between(self, sender: ProcessId,
                           receiver: ProcessId) -> List[Envelope]:
        return [
            env for env in self._in_transit
            if env.sender == sender and env.receiver == receiver
        ]

    def pending_count(self) -> int:
        return len(self._in_transit)

    def drop(self, envelope: Envelope) -> None:
        """Adversarial removal (malicious-process privilege, Section 2.1).

        Only the kernel's adversary API calls this; the network itself is
        reliable.
        """
        self._in_transit.remove(envelope)

    def drop_matching(self, predicate: HoldPredicate) -> int:
        """Drop all matching envelopes; returns how many were removed."""
        matched = [env for env in self._in_transit if predicate(env)]
        for env in matched:
            self._in_transit.remove(env)
        return len(matched)
