"""Server-centric model (Section 6): objects as first-class servers.

The data-centric model forbids base objects from messaging anyone except
in direct reply to a client request.  Section 6 lifts that restriction:
servers may talk to each other and *push* unsolicited messages to
clients.  The paper shows its lower bound survives, with a fast READ
redefined as (a) the client messages (a subset of) servers, (b) servers
reply without waiting for any other message, (c) the operation completes
on ``S - t`` such replies -- i.e. pushes delayed by asynchrony cannot
rescue a one-round read.

This module provides the push-enabled automata used by experiment E9:

* :class:`PushUpdate` -- an unsolicited server-to-reader notification;
* :class:`PushFastObject` -- a fast-read object that additionally pushes
  every write it learns to every reader;
* :class:`ServerCentricFastProtocol` -- the fast-read victim protocol in
  the server-centric model (reads also harvest pushes as evidence).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List

from ..automata.base import Outgoing
from ..config import SystemConfig
from ..core.lower_bound.victims import (ALL_RULES, FastObject,
                                        FastReadOperation, FastReaderState,
                                        FastReadProtocol)
from ..messages import Message, ReadAck, W
from ..types import ProcessId, TimestampValue, reader


@dataclass(frozen=True, slots=True)
class PushUpdate(Message):
    """Unsolicited notification: "I now hold <ts, v>"."""

    object_index: int
    tsval: TimestampValue


class PushFastObject(FastObject):
    """Fast-read object that pushes every accepted write to all readers."""

    def on_message(self, sender: ProcessId, message: Any) -> Outgoing:
        before = self.tsval
        replies = super().on_message(sender, message)
        if isinstance(message, W) and self.tsval != before:
            push = PushUpdate(object_index=self.object_index,
                              tsval=self.tsval)
            replies = list(replies) + [
                (reader(j), push) for j in range(self.config.num_readers)
            ]
        return replies


class ServerCentricReadOperation(FastReadOperation):
    """Fast read that also accepts pushed updates as evidence.

    A push carries no request nonce; it is folded in as that object's
    latest opinion.  Completion still requires ``S - t`` *solicited*
    replies (the Section 6 fast-read definition); pushes merely refresh
    the values those replies contribute.
    """

    def __init__(self, state: FastReaderState, rule: str):
        super().__init__(state, rule)
        self._pushed: Dict[int, TimestampValue] = {}

    def on_message(self, sender: ProcessId, message: Any) -> Outgoing:
        if isinstance(message, PushUpdate) and sender.is_object:
            if not self.done:
                current = self._pushed.get(sender.index)
                if current is None or message.tsval.ts > current.ts:
                    self._pushed[sender.index] = message.tsval
                    # Refresh the opinion of an object that already
                    # answered the solicited round.
                    if sender.index in self._acks:
                        stored = self._acks[sender.index]
                        if message.tsval.ts > stored.ts:
                            self._acks[sender.index] = message.tsval
            return []
        return super().on_message(sender, message)


class ServerCentricFastProtocol(FastReadProtocol):
    """The fast-read victim, server-centric edition (experiment E9)."""

    def __init__(self, rule: str = "threshold"):
        super().__init__(rule)
        self.name = f"server-centric-fast[{rule}]"

    def make_objects(self, config: SystemConfig) -> List[PushFastObject]:
        self.validate_config(config)
        return [PushFastObject(i, config) for i in range(config.num_objects)]

    def make_read(self, reader_state: FastReaderState
                  ) -> ServerCentricReadOperation:
        return ServerCentricReadOperation(reader_state, self.rule)
