"""Authenticated regular storage (à la Malkhi & Reiter [15]).

The counterpoint the paper name-checks in Section 1: *if* data can be
authenticated, a regular storage with optimal resilience, one-round writes
**and one-round reads** is straightforward -- which is exactly why the
lower bound insists on unauthenticated data.  The writer signs each
``<ts, v>`` pair with :mod:`repro.crypto_sim`; readers verify and return
the highest validly-signed pair among ``S - t`` replies.  Byzantine
objects can withhold or replay old signed values, but they cannot mint new
ones, so one genuine reply from the quorum-intersection suffices.

Cost: signatures (cycles + trust infrastructure), which the paper's
protocols avoid entirely.  E7 shows the three-way trade-off.
"""

from .protocol import (AuthObject, AuthenticatedProtocol, AuthReadOperation,
                       AuthWriteOperation)

__all__ = [
    "AuthenticatedProtocol",
    "AuthObject",
    "AuthReadOperation",
    "AuthWriteOperation",
]
