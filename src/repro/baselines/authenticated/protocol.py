"""Automata of the authenticated one-round storage."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Set

from ...automata.base import (ClientOperation, MultiRegisterObject,
                              Outgoing)
from ...config import SystemConfig
from ...crypto_sim import PublicKey, SignedValue, Signer
from ...errors import ProtocolError
from ...messages import Message
from ...protocols import REGULAR, StorageProtocol
from ...types import (BOTTOM, DEFAULT_REGISTER, INITIAL_TSVAL, ProcessId,
                      TimestampValue, WRITER, _Bottom, obj, reader)


@dataclass(frozen=True)
class AuthStore(Message):
    signed: SignedValue  # signed TimestampValue
    nonce: int
    register_id: str = DEFAULT_REGISTER


@dataclass(frozen=True)
class AuthStoreAck(Message):
    nonce: int
    register_id: str = DEFAULT_REGISTER


@dataclass(frozen=True)
class AuthQuery(Message):
    nonce: int
    register_id: str = DEFAULT_REGISTER


@dataclass(frozen=True)
class AuthQueryAck(Message):
    nonce: int
    signed: Optional[SignedValue]
    register_id: str = DEFAULT_REGISTER


class AuthSlot:
    """Per-register state: the highest-timestamp signed pair seen."""

    __slots__ = ("signed",)

    def __init__(self) -> None:
        self.signed: Optional[SignedValue] = None

    def current_ts(self) -> int:
        if self.signed is None:
            return 0
        payload = self.signed.payload
        return payload.ts if isinstance(payload, TimestampValue) else 0


class AuthObject(MultiRegisterObject):
    """Stores the signed pair with the highest timestamp it has seen.

    The object does *not* need to verify signatures itself (a Byzantine
    object would skip verification anyway); readers verify.
    """

    def __init__(self, object_index: int, config: SystemConfig):
        super().__init__(object_index)
        self.config = config

    def _new_slot(self) -> AuthSlot:
        return AuthSlot()

    @property
    def signed(self) -> Optional[SignedValue]:
        return self._slot(DEFAULT_REGISTER).signed

    def on_message(self, sender: ProcessId, message: Any) -> Outgoing:
        if isinstance(message, AuthStore):
            slot = self._slot(message.register_id)
            payload = message.signed.payload
            if (isinstance(payload, TimestampValue)
                    and payload.ts > slot.current_ts()):
                slot.signed = message.signed
            return [(sender, AuthStoreAck(nonce=message.nonce,
                                          register_id=message.register_id))]
        if isinstance(message, AuthQuery):
            slot = self._slot(message.register_id)
            return [(sender, AuthQueryAck(nonce=message.nonce,
                                          signed=slot.signed,
                                          register_id=message.register_id))]
        return []


class AuthWriterState:
    def __init__(self, config: SystemConfig, signer: Signer):
        self.config = config
        self.signer = signer
        self.ts = 0
        self._nonce = 0

    def next_nonce(self) -> int:
        self._nonce += 1
        return self._nonce


class AuthReaderState:
    def __init__(self, config: SystemConfig, reader_index: int,
                 public_key: PublicKey):
        self.config = config
        self.reader_index = reader_index
        self.public_key = public_key
        self._nonce = 0

    def next_nonce(self) -> int:
        self._nonce += 1
        return self._nonce


class AuthWriteOperation(ClientOperation):
    """One round: sign <ts, v>, install at ``S - t`` objects."""

    kind = "WRITE"

    def __init__(self, state: AuthWriterState, value: Any):
        super().__init__(WRITER)
        if isinstance(value, _Bottom):
            raise ProtocolError("⊥ is not a valid input value for WRITE")
        self.state = state
        self.config = state.config
        self.value = value
        self.nonce = 0
        self._ackers: Set[int] = set()

    def start(self) -> Outgoing:
        self.state.ts += 1
        self.nonce = self.state.next_nonce()
        signed = self.state.signer.sign(
            TimestampValue(self.state.ts, self.value))
        self.begin_round()
        message = AuthStore(signed=signed, nonce=self.nonce,
                            register_id=self.register_id)
        return [(obj(i), message) for i in range(self.config.num_objects)]

    def on_message(self, sender: ProcessId, message: Any) -> Outgoing:
        if self.done or not isinstance(message, AuthStoreAck):
            return []
        if message.nonce != self.nonce \
                or message.register_id != self.register_id:
            return []
        self._ackers.add(sender.index)
        if len(self._ackers) >= self.config.quorum_size:
            return self.complete("OK")
        return []


class AuthReadOperation(ClientOperation):
    """One round: highest *validly signed* pair among ``S - t`` replies."""

    kind = "READ"

    def __init__(self, state: AuthReaderState):
        super().__init__(reader(state.reader_index))
        self.state = state
        self.config = state.config
        self.nonce = 0
        self._answers: Dict[int, Optional[SignedValue]] = {}
        self.rejected_forgeries = 0

    def start(self) -> Outgoing:
        self.nonce = self.state.next_nonce()
        self.begin_round()
        message = AuthQuery(nonce=self.nonce, register_id=self.register_id)
        return [(obj(i), message) for i in range(self.config.num_objects)]

    def on_message(self, sender: ProcessId, message: Any) -> Outgoing:
        if self.done or not isinstance(message, AuthQueryAck):
            return []
        if message.nonce != self.nonce or sender.index in self._answers \
                or message.register_id != self.register_id:
            return []
        self._answers[sender.index] = message.signed
        if len(self._answers) >= self.config.quorum_size:
            return self.complete(self._select())
        return []

    def _select(self) -> Any:
        best: Optional[TimestampValue] = None
        for signed in self._answers.values():
            if signed is None:
                continue
            if not self.state.public_key.verify(signed):
                self.rejected_forgeries += 1
                continue
            payload = signed.payload
            if not isinstance(payload, TimestampValue):
                self.rejected_forgeries += 1
                continue
            if best is None or payload.ts > best.ts:
                best = payload
        return best.value if best is not None else BOTTOM


class AuthenticatedProtocol(StorageProtocol):
    """Signed data: fast reads *and* writes at optimal resilience."""

    name = "authenticated"
    semantics = REGULAR
    write_rounds_worst_case = 1
    read_rounds_worst_case = 1
    requires_authentication = True
    readers_write = False

    def __init__(self, key_seed: int = 0):
        self._signer = Signer("writer", seed=key_seed)

    def min_objects(self, t: int, b: int) -> int:
        return 2 * t + b + 1

    def make_objects(self, config: SystemConfig) -> List[AuthObject]:
        self.validate_config(config)
        return [AuthObject(i, config) for i in range(config.num_objects)]

    def make_writer_state(self, config: SystemConfig) -> AuthWriterState:
        return AuthWriterState(config, self._signer)

    def make_reader_state(self, config: SystemConfig,
                          reader_index: int) -> AuthReaderState:
        return AuthReaderState(config, reader_index,
                               self._signer.public_key())

    def make_write(self, writer_state: AuthWriterState,
                   value: Any) -> AuthWriteOperation:
        return AuthWriteOperation(writer_state, value)

    def make_read(self, reader_state: AuthReaderState) -> AuthReadOperation:
        return AuthReadOperation(reader_state)
