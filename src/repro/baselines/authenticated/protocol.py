"""Automata of the authenticated one-round storage."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Set

from ...automata.base import (ClientOperation, MultiRegisterObject,
                              Outgoing)
from ...automata.rounds import TagDiscovery
from ...config import SystemConfig
from ...crypto_sim import PublicKey, SignedValue, Signer
from ...errors import FencedWriteError, ProtocolError
from ...messages import (EpochFence, Message, TagQuery, TagQueryAck,
                         WriteFenced)
from ...protocols import REGULAR, StorageProtocol
from ...types import (BOTTOM, DEFAULT_REGISTER, INITIAL_TSVAL, TAG0,
                      ProcessId, TimestampValue, WRITER, WriterTag,
                      _Bottom, obj, reader, writer)


@dataclass(frozen=True, slots=True)
class AuthStore(Message):
    signed: SignedValue  # signed TimestampValue
    nonce: int
    register_id: str = DEFAULT_REGISTER


@dataclass(frozen=True, slots=True)
class AuthStoreAck(Message):
    nonce: int
    register_id: str = DEFAULT_REGISTER


@dataclass(frozen=True, slots=True)
class AuthQuery(Message):
    nonce: int
    register_id: str = DEFAULT_REGISTER


@dataclass(frozen=True, slots=True)
class AuthQueryAck(Message):
    nonce: int
    signed: Optional[SignedValue]
    register_id: str = DEFAULT_REGISTER


class AuthSlot:
    """Per-register state: the highest-tagged signed pair seen."""

    __slots__ = ("signed",)

    def __init__(self) -> None:
        self.signed: Optional[SignedValue] = None

    def current_tag(self):
        if self.signed is None:
            return TAG0
        payload = self.signed.payload
        return payload.tag if isinstance(payload, TimestampValue) else TAG0

    def current_ts(self) -> int:
        return self.current_tag().epoch


class AuthObject(MultiRegisterObject):
    """Stores the signed pair with the highest timestamp it has seen.

    The object does *not* need to verify signatures itself (a Byzantine
    object would skip verification anyway); readers verify.
    """

    def __init__(self, object_index: int, config: SystemConfig):
        super().__init__(object_index)
        self.config = config

    def _new_slot(self) -> AuthSlot:
        return AuthSlot()

    @property
    def signed(self) -> Optional[SignedValue]:
        return self._slot(DEFAULT_REGISTER).signed

    def on_message(self, sender: ProcessId, message: Any) -> Outgoing:
        if isinstance(message, AuthStore):
            payload = message.signed.payload
            if (isinstance(payload, TimestampValue)
                    and self._fence_rejects(message.register_id,
                                            payload.ts)):
                return self._fence_nack(sender, message.register_id,
                                        payload.ts, payload.wid,
                                        nonce=message.nonce)
            slot = self._slot(message.register_id)
            if (isinstance(payload, TimestampValue)
                    and payload.tag > slot.current_tag()):
                slot.signed = message.signed
            return [(sender, AuthStoreAck(nonce=message.nonce,
                                          register_id=message.register_id))]
        if isinstance(message, EpochFence):
            return self._on_epoch_fence(sender, message)
        if isinstance(message, AuthQuery):
            slot = self._slot(message.register_id)
            return [(sender, AuthQueryAck(nonce=message.nonce,
                                          signed=slot.signed,
                                          register_id=message.register_id))]
        if isinstance(message, TagQuery):
            # Control-plane discovery (fencing): protocol-agnostic, so
            # reconfiguration works on authenticated stores too.
            tag = self._slot(message.register_id).current_tag()
            return [(sender, TagQueryAck(nonce=message.nonce,
                                         object_index=self.object_index,
                                         epoch=tag.epoch,
                                         wid=tag.writer_id,
                                         register_id=message.register_id))]
        return []


class AuthWriterState:
    def __init__(self, config: SystemConfig, signer: Signer,
                 writer_index: int = 0):
        self.config = config
        self.signer = signer
        self.writer_index = writer_index
        self.ts = 0
        self._nonce = 0

    def next_nonce(self) -> int:
        self._nonce += 1
        return self._nonce


class AuthReaderState:
    def __init__(self, config: SystemConfig, reader_index: int,
                 public_key: PublicKey,
                 key_ring: Optional[Dict[str, PublicKey]] = None):
        self.config = config
        self.reader_index = reader_index
        self.public_key = public_key
        #: key_id -> verification key for every legitimate writer (MWMR);
        #: defaults to the single writer's key.
        self.key_ring = key_ring or {public_key.key_id: public_key}
        self._nonce = 0

    def next_nonce(self) -> int:
        self._nonce += 1
        return self._nonce


class AuthWriteOperation(ClientOperation):
    """Sign <tag, v>, install at ``S - t`` objects.

    Single-writer: one round.  Multi-writer: a query round discovers the
    maximum tag first (reports are advisory for epoch choice only -- the
    signature, not the report, is what readers trust).
    """

    kind = "WRITE"

    def __init__(self, state: AuthWriterState, value: Any):
        super().__init__(writer(state.writer_index))
        if isinstance(value, _Bottom):
            raise ProtocolError("⊥ is not a valid input value for WRITE")
        self.state = state
        self.config = state.config
        self.value = value
        self.wid = state.writer_index
        self.discover_tag = state.config.is_multi_writer
        self.phase = "query" if self.discover_tag else "store"
        self.nonce = 0
        self.query_nonce = 0
        self.discovery: Optional[TagDiscovery] = None
        self._ackers: Set[int] = set()
        self._fencers: Set[int] = set()

    def start(self) -> Outgoing:
        if self.discover_tag:
            self.query_nonce = self.state.next_nonce()
            self.discovery = TagDiscovery(
                nonce=self.query_nonce,
                quorum=self.config.quorum_size,
                writer_id=self.wid,
                floor=WriterTag(self.state.ts, self.wid),
            )
            self.begin_round()
            message = AuthQuery(nonce=self.query_nonce,
                                register_id=self.register_id)
            return [(obj(i), message)
                    for i in range(self.config.num_objects)]
        return self._start_store(self.state.ts + 1)

    def _start_store(self, epoch: int) -> Outgoing:
        self.phase = "store"
        self.state.ts = epoch
        self.nonce = self.state.next_nonce()
        tsval = TimestampValue(epoch, self.value, wid=self.wid)
        self.tag = tsval.tag
        signed = self.state.signer.sign(tsval)
        self.begin_round()
        message = AuthStore(signed=signed, nonce=self.nonce,
                            register_id=self.register_id)
        return [(obj(i), message) for i in range(self.config.num_objects)]

    def on_message(self, sender: ProcessId, message: Any) -> Outgoing:
        if self.done:
            return []
        if (self.phase == "query" and isinstance(message, AuthQueryAck)
                and self.discovery is not None
                and message.register_id == self.register_id):
            # Reports are advisory for epoch choice only (the signature,
            # not the report, is what readers trust); unsigned or
            # malformed reports count toward the quorum at the floor tag.
            signed = message.signed
            tag = (signed.payload.tag
                   if signed is not None
                   and isinstance(signed.payload, TimestampValue)
                   else TAG0)
            self.discovery.offer(sender.index, message.nonce, tag)
            if self.discovery.ready():
                return self._start_store(self.discovery.chosen_tag().epoch)
            return []
        if isinstance(message, WriteFenced):
            if (self.phase == "store" and message.nonce == self.nonce
                    and message.register_id == self.register_id):
                self._fencers.add(sender.index)
                if len(self._fencers) > self.config.b:
                    raise FencedWriteError(
                        f"WRITE#{self.operation_id} on "
                        f"{self.register_id!r} (epoch {self.state.ts}) "
                        f"refused by epoch fence {message.fence_epoch}")
            return []
        if not isinstance(message, AuthStoreAck):
            return []
        if self.phase != "store" or message.nonce != self.nonce \
                or message.register_id != self.register_id:
            return []
        self._ackers.add(sender.index)
        if len(self._ackers) >= self.config.quorum_size:
            return self.complete("OK")
        return []


class AuthReadOperation(ClientOperation):
    """One round: highest *validly signed* pair among ``S - t`` replies."""

    kind = "READ"

    def __init__(self, state: AuthReaderState):
        super().__init__(reader(state.reader_index))
        self.state = state
        self.config = state.config
        self.nonce = 0
        self._answers: Dict[int, Optional[SignedValue]] = {}
        self.rejected_forgeries = 0

    def start(self) -> Outgoing:
        self.nonce = self.state.next_nonce()
        self.begin_round()
        message = AuthQuery(nonce=self.nonce, register_id=self.register_id)
        return [(obj(i), message) for i in range(self.config.num_objects)]

    def on_message(self, sender: ProcessId, message: Any) -> Outgoing:
        if self.done or not isinstance(message, AuthQueryAck):
            return []
        if message.nonce != self.nonce or sender.index in self._answers \
                or message.register_id != self.register_id:
            return []
        self._answers[sender.index] = message.signed
        if len(self._answers) >= self.config.quorum_size:
            return self.complete(self._select())
        return []

    def _select(self) -> Any:
        best: Optional[TimestampValue] = None
        for signed in self._answers.values():
            if signed is None:
                continue
            key = self.state.key_ring.get(signed.key_id)
            if key is None or not key.verify(signed):
                self.rejected_forgeries += 1
                continue
            payload = signed.payload
            if not isinstance(payload, TimestampValue):
                self.rejected_forgeries += 1
                continue
            if best is None or payload.tag > best.tag:
                best = payload
        self.tag = best.tag if best is not None else TAG0
        return best.value if best is not None else BOTTOM


class AuthenticatedProtocol(StorageProtocol):
    """Signed data: fast reads *and* writes at optimal resilience."""

    name = "authenticated"
    semantics = REGULAR
    write_rounds_worst_case = 1
    read_rounds_worst_case = 1
    requires_authentication = True
    readers_write = False

    def __init__(self, key_seed: int = 0):
        self._key_seed = key_seed
        # Writer 0 keeps the historical key id "writer" so existing
        # signatures, traces and tests stay byte-identical.
        self._signers: Dict[int, Signer] = {
            0: Signer("writer", seed=key_seed)}

    def _signer_for(self, writer_index: int) -> Signer:
        signer = self._signers.get(writer_index)
        if signer is None:
            signer = self._signers[writer_index] = Signer(
                f"writer{writer_index}", seed=self._key_seed + writer_index)
        return signer

    def _key_ring(self, config: SystemConfig) -> Dict[str, PublicKey]:
        ring: Dict[str, PublicKey] = {}
        for k in range(config.num_writers):
            key = self._signer_for(k).public_key()
            ring[key.key_id] = key
        return ring

    def min_objects(self, t: int, b: int) -> int:
        return 2 * t + b + 1

    def make_objects(self, config: SystemConfig) -> List[AuthObject]:
        self.validate_config(config)
        return [AuthObject(i, config) for i in range(config.num_objects)]

    def make_writer_state(self, config: SystemConfig) -> AuthWriterState:
        return AuthWriterState(config, self._signer_for(0))

    def make_writer_state_for(self, config: SystemConfig,
                              writer_index: int = 0) -> AuthWriterState:
        return AuthWriterState(config, self._signer_for(writer_index),
                               writer_index=writer_index)

    def make_reader_state(self, config: SystemConfig,
                          reader_index: int) -> AuthReaderState:
        return AuthReaderState(config, reader_index,
                               self._signer_for(0).public_key(),
                               key_ring=self._key_ring(config))

    def make_write(self, writer_state: AuthWriterState,
                   value: Any) -> AuthWriteOperation:
        return AuthWriteOperation(writer_state, value)

    def make_read(self, reader_state: AuthReaderState) -> AuthReadOperation:
        return AuthReadOperation(reader_state)
