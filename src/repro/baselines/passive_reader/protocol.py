"""Automata of the passive-reader baseline."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List

from ...automata.base import (ClientOperation, MultiRegisterObject,
                              Outgoing)
from ...config import SystemConfig
from ...core.safe.predicates import CandidateTracker
from ...core.safe.writer import SafeWriterState, SafeWriteOperation
from ...errors import SimulationError
from ...messages import (EpochFence, Pw, PwAck, ReadAck, ReadRequest,
                         TagQuery, TagQueryAck, W, WriteAck)
from ...protocols import SAFE, StorageProtocol
from ...quorums import confirmation_threshold, elimination_threshold
from ...types import (BOTTOM, DEFAULT_REGISTER, INITIAL_TSVAL, TAG0,
                      ProcessId, TimestampValue, WriterTag, WriteTuple,
                      initial_write_tuple, obj, reader)


@dataclass
class PassiveSlot:
    """Per-register state: latest pw/w only (no reader timestamps)."""

    ts: int
    pw: TimestampValue
    w: WriteTuple
    wid: int = 0

    @property
    def tag(self) -> WriterTag:
        return WriterTag(self.ts, self.wid)


class PassiveObject(MultiRegisterObject):
    """Like :class:`~repro.core.safe.object.SafeObject` minus the ``tsr``
    fields: reads leave no trace in the object."""

    def __init__(self, object_index: int, config: SystemConfig):
        super().__init__(object_index)
        self.config = config

    def _new_slot(self) -> PassiveSlot:
        return PassiveSlot(
            ts=0,
            pw=INITIAL_TSVAL,
            w=initial_write_tuple(self.config.num_objects,
                                  self.config.num_readers),
        )

    @property
    def ts(self) -> int:
        return self._slot(DEFAULT_REGISTER).ts

    @property
    def pw(self) -> TimestampValue:
        return self._slot(DEFAULT_REGISTER).pw

    @property
    def w(self) -> WriteTuple:
        return self._slot(DEFAULT_REGISTER).w

    def on_message(self, sender: ProcessId, message: Any) -> Outgoing:
        if isinstance(message, EpochFence):
            return self._on_epoch_fence(sender, message)
        if isinstance(message, (Pw, W)) and self._fence_rejects(
                message.register_id, message.ts):
            return self._fence_nack(sender, message.register_id,
                                    message.ts, message.wid)
        if isinstance(message, Pw):
            slot = self._slot(message.register_id)
            if message.tag > slot.tag:
                slot.ts = message.ts
                slot.wid = message.wid
                slot.pw = message.pw
                if message.w.tag > slot.w.tag:
                    slot.w = message.w
            elif not self.config.is_multi_writer:
                return []
            # No reader timestamps to report: an all-zero row.
            return [(sender, PwAck(
                ts=message.ts, object_index=self.object_index,
                tsr=(0,) * self.config.num_readers,
                register_id=message.register_id, wid=message.wid))]
        if isinstance(message, W):
            slot = self._slot(message.register_id)
            if message.tag >= slot.tag:
                slot.ts = message.ts
                slot.wid = message.wid
                slot.pw = message.pw
                slot.w = message.w
            elif not self.config.is_multi_writer:
                return []
            elif message.w.tag > slot.w.tag:
                slot.w = message.w
            return [(sender, WriteAck(ts=message.ts,
                                      object_index=self.object_index,
                                      register_id=message.register_id,
                                      wid=message.wid))]
        if isinstance(message, TagQuery):
            slot = self._slot(message.register_id)
            top = max(slot.tag, slot.pw.tag, slot.w.tag)
            return [(sender, TagQueryAck(
                nonce=message.nonce, object_index=self.object_index,
                epoch=top.epoch, wid=top.writer_id,
                register_id=message.register_id))]
        if isinstance(message, ReadRequest):
            # Stateless with respect to readers: always answer, echoing the
            # request nonce so the reader can match rounds.
            slot = self._slot(message.register_id)
            return [(sender, ReadAck(round_index=message.round_index,
                                     tsr=message.tsr,
                                     object_index=self.object_index,
                                     pw=slot.pw, w=slot.w,
                                     register_id=message.register_id))]
        return []


class PassiveReaderState:
    def __init__(self, config: SystemConfig, reader_index: int):
        self.config = config
        self.reader_index = reader_index
        self._nonce = 0

    def next_nonce(self) -> int:
        self._nonce += 1
        return self._nonce


class PassiveReadOperation(ClientOperation):
    """Accumulating multi-round read; rounds grow with Byzantine effort."""

    kind = "READ"

    def __init__(self, state: PassiveReaderState, max_rounds: int = 64):
        super().__init__(reader(state.reader_index))
        self.state = state
        self.config = state.config
        self.max_rounds = max_rounds
        self.tracker = CandidateTracker(
            elimination_threshold=elimination_threshold(self.config),
            confirmation_threshold=confirmation_threshold(self.config),
        )
        self.round_index = 0
        self._round_nonce: Dict[int, int] = {}
        self._round_acks: Dict[int, set] = {}

    # ------------------------------------------------------------------
    def start(self) -> Outgoing:
        return self._broadcast_round()

    def _broadcast_round(self) -> Outgoing:
        self.round_index += 1
        if self.round_index > self.max_rounds:
            raise SimulationError(
                f"passive read exceeded {self.max_rounds} rounds; the "
                "schedule starves correct objects' replies indefinitely")
        nonce = self.state.next_nonce()
        self._round_nonce[self.round_index] = nonce
        self._round_acks[self.round_index] = set()
        self.begin_round()
        request = ReadRequest(round_index=self.round_index, tsr=nonce,
                              reader_index=self.state.reader_index,
                              register_id=self.register_id)
        return [(obj(i), request) for i in range(self.config.num_objects)]

    # ------------------------------------------------------------------
    def on_message(self, sender: ProcessId, message: Any) -> Outgoing:
        if self.done or not isinstance(message, ReadAck):
            return []
        if message.register_id != self.register_id:
            return []
        rnd = message.round_index
        if rnd not in self._round_nonce:
            return []
        if message.tsr != self._round_nonce[rnd]:
            return []
        i = sender.index
        # Evidence accumulates across every round (passive readers have
        # nothing else); candidates enter C in any round.
        self.tracker.record_first_round(i, message.pw, message.w)
        self._round_acks[rnd].add(i)
        self._maybe_return()
        if self.done:
            return []
        # A full quorum answered the *current* round with no verdict: the
        # only remaining move is another round.
        if (rnd == self.round_index
                and len(self._round_acks[rnd]) >= self.config.quorum_size):
            return self._broadcast_round()
        return []

    def _maybe_return(self) -> None:
        candidate = self.tracker.returnable()
        if candidate is not None:
            self.tag = candidate.tag
            self.complete(candidate.tsval.value)
            return
        if (self.tracker._candidates  # has ever seen candidates
                and self.tracker.candidates_empty()):
            self.tag = TAG0
            self.complete(BOTTOM)


class PassiveReaderProtocol(StorageProtocol):
    """Safe storage with passive readers (E7's ``b + 1``-round row)."""

    name = "passive-reader"
    semantics = SAFE
    write_rounds_worst_case = 2
    #: worst case proven by [1] for S < 2t + 2b + 1; see the module doc.
    read_rounds_worst_case = -1  # "b + 1": depends on b; see reads_bound()
    requires_authentication = False
    readers_write = False

    @staticmethod
    def read_rounds_bound(b: int) -> int:
        return b + 1

    def min_objects(self, t: int, b: int) -> int:
        return 2 * t + b + 1

    def make_objects(self, config: SystemConfig) -> List[PassiveObject]:
        self.validate_config(config)
        return [PassiveObject(i, config) for i in range(config.num_objects)]

    def make_writer_state(self, config: SystemConfig) -> SafeWriterState:
        return SafeWriterState(config)

    def make_reader_state(self, config: SystemConfig,
                          reader_index: int) -> PassiveReaderState:
        return PassiveReaderState(config, reader_index)

    def make_write(self, writer_state: SafeWriterState,
                   value: Any) -> SafeWriteOperation:
        return SafeWriteOperation(writer_state, value)

    def make_read(self, reader_state: PassiveReaderState
                  ) -> PassiveReadOperation:
        return PassiveReadOperation(reader_state)
