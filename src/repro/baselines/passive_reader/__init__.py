"""Passive-reader safe storage (the pre-paper state of the art, à la [1]).

Readers of this baseline do **not** modify base-object state -- the design
point of Abraham, Chockler, Keidar & Malkhi's Byzantine Disk Paxos [1],
whose lower bound says such readers need ``b + 1`` rounds in the worst
case whenever fewer than ``2t + 2b + 1`` objects are available.  The
protocol here is a simplified accumulate-until-confirmed emulation:

* the WRITE is the paper's two-round pre-write/write (Figure 2) so that
  written values carry the same durability invariant (``b + 1``
  non-malicious objects hold the pre-write before any write completes);
* the READ broadcasts query rounds and accumulates evidence across *all*
  rounds; it returns the highest candidate confirmed by ``b + 1`` distinct
  objects, eliminates candidates contradicted by ``t + b + 1`` objects,
  and opens another round whenever a full quorum answered without a
  verdict.

Fault-free it returns in one round; each Byzantine forgery costs roughly
one extra elimination round, and the adversarial experiments drive it to
``b + 1`` rounds -- the shape [1] proves optimal for passive readers.
This is the ablation for the paper's central design move (readers writing
``tsr`` timestamps), quantified in E7/E8.
"""

from .protocol import (PassiveObject, PassiveReaderProtocol,
                       PassiveReadOperation)

__all__ = [
    "PassiveReaderProtocol",
    "PassiveObject",
    "PassiveReadOperation",
]
