"""Baseline storage protocols the paper compares against.

* :class:`~repro.baselines.abd.AbdRegularProtocol` /
  :class:`~repro.baselines.abd.AbdAtomicProtocol` -- crash-only majority
  storage [3] (``b = 0``);
* :class:`~repro.baselines.passive_reader.PassiveReaderProtocol` -- safe
  storage whose readers never write, needing ``b + 1`` read rounds in the
  worst case [1];
* :class:`~repro.baselines.authenticated.AuthenticatedProtocol` -- signed
  data, one-round reads and writes [15];
* the deliberately unsafe fast-read victims live with the lower-bound
  machinery in :mod:`repro.core.lower_bound.victims`.
"""

from .abd import AbdAtomicProtocol, AbdRegularProtocol
from .authenticated import AuthenticatedProtocol
from .passive_reader import PassiveReaderProtocol

__all__ = [
    "AbdRegularProtocol",
    "AbdAtomicProtocol",
    "PassiveReaderProtocol",
    "AuthenticatedProtocol",
]
