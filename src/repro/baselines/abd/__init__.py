"""ABD crash-only storage (Attiya, Bar-Noy & Dolev [3]).

The historical starting point of the storage-emulation literature and the
``b = 0`` column of the comparison experiment (E7): with only crash
failures, ``S = 2t + 1`` objects suffice, the WRITE is one round, and the
READ is one round for *regular* semantics (two -- read plus write-back --
for atomic semantics in the multi-reader case).

The contrast with the paper is the point: the moment ``b > 0`` (and data
is unauthenticated), one-round reads become impossible below
``2t + 2b + 1`` objects, and the best possible at optimal resilience is
the paper's two rounds.
"""

from .protocol import (AbdAtomicProtocol, AbdObject, AbdReadOperation,
                       AbdRegularProtocol, AbdWriteOperation)

__all__ = [
    "AbdRegularProtocol",
    "AbdAtomicProtocol",
    "AbdObject",
    "AbdReadOperation",
    "AbdWriteOperation",
]
