"""ABD protocol automata (crash-only majority storage)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Set

from ...automata.base import (ClientOperation, MultiRegisterObject,
                              Outgoing)
from ...automata.rounds import TagDiscovery
from ...config import SystemConfig
from ...errors import (ConfigurationError, FencedWriteError,
                       ProtocolError)
from ...messages import (EpochFence, Message, TagQuery, TagQueryAck,
                         WriteFenced)
from ...protocols import ATOMIC, REGULAR, StorageProtocol
from ...types import (BOTTOM, DEFAULT_REGISTER, INITIAL_TSVAL, ProcessId,
                      TimestampValue, WRITER, WriterTag, _Bottom, obj,
                      reader, writer)


# ---------------------------------------------------------------------------
# Messages
# ---------------------------------------------------------------------------


@dataclass(frozen=True, slots=True)
class AbdStore(Message):
    """Install <ts, v> (used by the writer and by read write-backs).

    ``write_back`` distinguishes a reader's write-back from a writer's
    store: epoch fences (reconfiguration) refuse stale writer stores but
    let write-backs through -- a write-back only re-installs a tag that
    already exists at a quorum, so it cannot smuggle a new write past a
    fence.  Legacy frames omit the flag and decode as writer stores.
    """

    tsval: TimestampValue
    nonce: int
    register_id: str = DEFAULT_REGISTER
    write_back: bool = False


@dataclass(frozen=True, slots=True)
class AbdStoreAck(Message):
    nonce: int
    ts: int
    register_id: str = DEFAULT_REGISTER


@dataclass(frozen=True, slots=True)
class AbdQuery(Message):
    nonce: int
    register_id: str = DEFAULT_REGISTER


@dataclass(frozen=True, slots=True)
class AbdQueryAck(Message):
    nonce: int
    tsval: TimestampValue
    register_id: str = DEFAULT_REGISTER


# ---------------------------------------------------------------------------
# Object
# ---------------------------------------------------------------------------


class AbdSlot:
    """Per-register state: the latest timestamp-value pair."""

    __slots__ = ("tsval",)

    def __init__(self) -> None:
        self.tsval: TimestampValue = INITIAL_TSVAL


class AbdObject(MultiRegisterObject):
    """Latest timestamp-value pair per register, monotone in the tag.

    Arbitration compares the full ``(epoch, writer_id)`` tag, which makes
    the object multi-writer ready for free: the store is always
    acknowledged (classic ABD), adoption happens only for strictly newer
    tags.
    """

    def __init__(self, object_index: int, config: SystemConfig):
        super().__init__(object_index)
        self.config = config

    def _new_slot(self) -> AbdSlot:
        return AbdSlot()

    @property
    def tsval(self) -> TimestampValue:
        return self._slot(DEFAULT_REGISTER).tsval

    def on_message(self, sender: ProcessId, message: Any) -> Outgoing:
        if isinstance(message, AbdStore):
            if (not message.write_back
                    and self._fence_rejects(message.register_id,
                                            message.tsval.ts)):
                return self._fence_nack(sender, message.register_id,
                                        message.tsval.ts,
                                        message.tsval.wid,
                                        nonce=message.nonce)
            slot = self._slot(message.register_id)
            if message.tsval.tag > slot.tsval.tag:
                slot.tsval = message.tsval
            return [(sender, AbdStoreAck(nonce=message.nonce,
                                         ts=slot.tsval.ts,
                                         register_id=message.register_id))]
        if isinstance(message, EpochFence):
            return self._on_epoch_fence(sender, message)
        if isinstance(message, AbdQuery):
            slot = self._slot(message.register_id)
            return [(sender, AbdQueryAck(nonce=message.nonce,
                                         tsval=slot.tsval,
                                         register_id=message.register_id))]
        if isinstance(message, TagQuery):
            # The protocol's own discovery speaks AbdQuery; TagQuery is
            # the control plane's protocol-agnostic discovery (fencing).
            tag = self._slot(message.register_id).tsval.tag
            return [(sender, TagQueryAck(nonce=message.nonce,
                                         object_index=self.object_index,
                                         epoch=tag.epoch,
                                         wid=tag.writer_id,
                                         register_id=message.register_id))]
        return []


# ---------------------------------------------------------------------------
# Client operations
# ---------------------------------------------------------------------------


class AbdWriterState:
    def __init__(self, config: SystemConfig, writer_index: int = 0):
        self.config = config
        self.writer_index = writer_index
        self.ts = 0
        self._nonce = 0

    def next_nonce(self) -> int:
        self._nonce += 1
        return self._nonce


class AbdReaderState:
    def __init__(self, config: SystemConfig, reader_index: int):
        self.config = config
        self.reader_index = reader_index
        self._nonce = 0

    def next_nonce(self) -> int:
        self._nonce += 1
        return self._nonce


class AbdWriteOperation(ClientOperation):
    """Write: store <tag, v> at a majority.

    Single-writer: one round (the local counter is authoritative).
    Multi-writer: the classic two-phase ABD write -- query a majority for
    the maximum tag, bump the epoch (tie-break on writer id), then store.
    """

    kind = "WRITE"

    def __init__(self, state: AbdWriterState, value: Any):
        super().__init__(writer(state.writer_index))
        if isinstance(value, _Bottom):
            raise ProtocolError("⊥ is not a valid input value for WRITE")
        self.state = state
        self.config = state.config
        self.value = value
        self.wid = state.writer_index
        self.discover_tag = state.config.is_multi_writer
        self.phase = "query" if self.discover_tag else "store"
        self.nonce = 0
        self.query_nonce = 0
        self.discovery: Optional[TagDiscovery] = None
        self._ackers: Set[int] = set()
        self._fencers: Set[int] = set()

    def start(self) -> Outgoing:
        if self.discover_tag:
            self.query_nonce = self.state.next_nonce()
            self.discovery = TagDiscovery(
                nonce=self.query_nonce,
                quorum=self.config.quorum_size,
                writer_id=self.wid,
                floor=WriterTag(self.state.ts, self.wid),
            )
            self.begin_round()
            message = AbdQuery(nonce=self.query_nonce,
                               register_id=self.register_id)
            return [(obj(i), message)
                    for i in range(self.config.num_objects)]
        return self._start_store(self.state.ts + 1)

    def _start_store(self, epoch: int) -> Outgoing:
        self.phase = "store"
        self.state.ts = epoch
        self.nonce = self.state.next_nonce()
        tsval = TimestampValue(epoch, self.value, wid=self.wid)
        self.tag = tsval.tag
        message = AbdStore(tsval=tsval, nonce=self.nonce,
                           register_id=self.register_id)
        self.begin_round()
        return [(obj(i), message) for i in range(self.config.num_objects)]

    def on_message(self, sender: ProcessId, message: Any) -> Outgoing:
        if self.done:
            return []
        if (self.phase == "query" and isinstance(message, AbdQueryAck)
                and self.discovery is not None
                and message.register_id == self.register_id):
            self.discovery.offer(sender.index, message.nonce,
                                 message.tsval.tag)
            if self.discovery.ready():
                return self._start_store(self.discovery.chosen_tag().epoch)
            return []
        if isinstance(message, WriteFenced):
            if (self.phase == "store" and message.nonce == self.nonce
                    and message.register_id == self.register_id):
                self._fencers.add(sender.index)
                if len(self._fencers) > self.config.b:
                    raise FencedWriteError(
                        f"WRITE#{self.operation_id} on "
                        f"{self.register_id!r} (epoch {self.state.ts}) "
                        f"refused by epoch fence {message.fence_epoch}")
            return []
        if not isinstance(message, AbdStoreAck):
            return []
        if self.phase != "store" or message.nonce != self.nonce \
                or message.register_id != self.register_id:
            return []
        self._ackers.add(sender.index)
        if len(self._ackers) >= self.config.quorum_size:
            return self.complete("OK")
        return []


class AbdReadOperation(ClientOperation):
    """Query a majority; atomically write back before returning if asked."""

    kind = "READ"

    def __init__(self, state: AbdReaderState, write_back: bool):
        super().__init__(reader(state.reader_index))
        self.state = state
        self.config = state.config
        self.write_back = write_back
        self.phase = "query"
        self.nonce = 0
        self.wb_nonce = 0
        self._answers: Dict[int, TimestampValue] = {}
        self._wb_ackers: Set[int] = set()
        self._chosen: TimestampValue = INITIAL_TSVAL

    def start(self) -> Outgoing:
        self.nonce = self.state.next_nonce()
        self.begin_round()
        message = AbdQuery(nonce=self.nonce, register_id=self.register_id)
        return [(obj(i), message) for i in range(self.config.num_objects)]

    def on_message(self, sender: ProcessId, message: Any) -> Outgoing:
        if self.done:
            return []
        if getattr(message, "register_id", self.register_id) \
                != self.register_id:
            return []
        if (self.phase == "query" and isinstance(message, AbdQueryAck)
                and message.nonce == self.nonce):
            if sender.index in self._answers:
                return []
            self._answers[sender.index] = message.tsval
            if len(self._answers) >= self.config.quorum_size:
                self._chosen = max(self._answers.values(),
                                   key=lambda tv: tv.tag)
                self.tag = self._chosen.tag
                if not self.write_back or self._chosen.ts == 0:
                    return self.complete(self._chosen.value)
                return self._start_write_back()
            return []
        if (self.phase == "write-back" and isinstance(message, AbdStoreAck)
                and message.nonce == self.wb_nonce):
            self._wb_ackers.add(sender.index)
            if len(self._wb_ackers) >= self.config.quorum_size:
                return self.complete(self._chosen.value)
        return []

    def _start_write_back(self) -> Outgoing:
        """Atomicity: install the chosen value at a majority first."""
        self.phase = "write-back"
        self.wb_nonce = self.state.next_nonce()
        self.begin_round()
        message = AbdStore(tsval=self._chosen, nonce=self.wb_nonce,
                           register_id=self.register_id, write_back=True)
        return [(obj(i), message) for i in range(self.config.num_objects)]


# ---------------------------------------------------------------------------
# Protocol plug-ins
# ---------------------------------------------------------------------------


class AbdRegularProtocol(StorageProtocol):
    """ABD with one-round reads: regular semantics, crash-only."""

    name = "abd-regular"
    semantics = REGULAR
    write_rounds_worst_case = 1
    read_rounds_worst_case = 1
    requires_authentication = False
    readers_write = False

    write_back = False

    def min_objects(self, t: int, b: int) -> int:
        return 2 * t + 1

    def validate_config(self, config: SystemConfig) -> None:
        super().validate_config(config)
        if config.b != 0:
            raise ConfigurationError(
                f"{self.name} tolerates crash failures only (b=0); "
                f"got b={config.b}")

    def make_objects(self, config: SystemConfig) -> List[AbdObject]:
        self.validate_config(config)
        return [AbdObject(i, config) for i in range(config.num_objects)]

    def make_writer_state(self, config: SystemConfig) -> AbdWriterState:
        return AbdWriterState(config)

    def make_writer_state_for(self, config: SystemConfig,
                              writer_index: int = 0) -> AbdWriterState:
        return AbdWriterState(config, writer_index=writer_index)

    def make_reader_state(self, config: SystemConfig,
                          reader_index: int) -> AbdReaderState:
        return AbdReaderState(config, reader_index)

    def make_write(self, writer_state: AbdWriterState,
                   value: Any) -> AbdWriteOperation:
        return AbdWriteOperation(writer_state, value)

    def make_read(self, reader_state: AbdReaderState) -> AbdReadOperation:
        return AbdReadOperation(reader_state, write_back=self.write_back)


class AbdAtomicProtocol(AbdRegularProtocol):
    """ABD with write-back reads: atomic semantics, 2-round reads."""

    name = "abd-atomic"
    semantics = ATOMIC
    read_rounds_worst_case = 2
    readers_write = True  # the write-back mutates object state
    write_back = True
