"""Core value types shared by every protocol in the library.

The vocabulary follows Section 2 of the paper:

* processes are the single *writer* ``w``, *readers* ``r1..rR`` and base
  *objects* ``s1..sS`` (:class:`ProcessId`);
* the writer tags each written value with an integer *timestamp*, forming a
  *timestamp-value pair* (:class:`TimestampValue`, the ``pw`` field of the
  paper's objects);
* the second write round installs a *write tuple* ``w = <tsval, tsrarray>``
  where ``tsrarray[i][j]`` is the reader-``j`` timestamp that object ``s_i``
  reported to the writer during the first write round
  (:class:`WriteTuple` / :class:`TsrArray`).

All value types are immutable and hashable: the reader algorithms keep
*sets* of candidate write tuples, and the simulator requires that nothing a
protocol puts in a message can be mutated after sending.
"""

from __future__ import annotations

import functools
import itertools
from dataclasses import dataclass, field
from typing import (Any, Dict, Iterable, Iterator, NamedTuple, Optional,
                    Tuple, Union)


class _Bottom:
    """The initial register value ``⊥`` (Section 2.2).

    ``BOTTOM`` is not a valid input to WRITE; a READ that returns it is
    reporting that no WRITE has (observably) completed.  A dedicated
    singleton type keeps it distinct from ``None`` (which protocols use for
    "no entry") and from any user payload.
    """

    _instance: Optional["_Bottom"] = None

    def __new__(cls) -> "_Bottom":
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __repr__(self) -> str:
        return "⊥"

    def __reduce__(self) -> Tuple[type, tuple]:
        return (_Bottom, ())


#: The initial value of every emulated register.
BOTTOM = _Bottom()

#: The register every legacy single-register API addresses.  Multi-register
#: callers pass explicit ids; everything defaulted keeps behaving exactly as
#: the pre-multiplexing library did.
DEFAULT_REGISTER = "r0"


# ---------------------------------------------------------------------------
# Writer tags (multi-writer timestamps)
# ---------------------------------------------------------------------------


class WriterTag(NamedTuple):
    """The ordered ``(epoch, writer_id)`` tag that totally orders writes.

    The classic MWMR extension of timestamp arbitration: writers discover
    the highest epoch a quorum has seen, bump it, and break epoch ties by
    their (globally unique) writer id.  Being a ``NamedTuple`` the tag
    compares lexicographically for free, hashes like a tuple, and is
    JSON-friendly on the wire.  The single-writer library is the special
    case ``writer_id == 0`` throughout: every legacy frame, state and test
    decodes/behaves as writer 0.
    """

    epoch: int
    writer_id: int = 0

    def next_for(self, writer_id: int) -> "WriterTag":
        """The tag a writer picks after observing this as the maximum."""
        return WriterTag(self.epoch + 1, writer_id)

    def __repr__(self) -> str:
        if self.writer_id == 0:
            return f"tag({self.epoch})"
        return f"tag({self.epoch}.{self.writer_id})"


#: The tag of the initial value ``⊥`` (epoch 0, writer 0).
TAG0 = WriterTag(0, 0)


def as_tag(value: Union["WriterTag", int, Tuple[int, int], None]
           ) -> Optional[WriterTag]:
    """Normalize a wire/legacy representation to a :class:`WriterTag`.

    Legacy frames and call sites carry bare integer timestamps; they map
    to ``(ts, writer 0)``.  ``None`` passes through (optional fields).
    """
    if value is None or isinstance(value, WriterTag):
        return value
    if isinstance(value, int):
        return WriterTag(value, 0)
    return WriterTag(*value)


# ---------------------------------------------------------------------------
# Process identities
# ---------------------------------------------------------------------------

ROLE_WRITER = "writer"
ROLE_READER = "reader"
ROLE_OBJECT = "object"

_VALID_ROLES = (ROLE_WRITER, ROLE_READER, ROLE_OBJECT)


@dataclass(frozen=True, order=True)
class ProcessId:
    """Identity of a process in the system.

    ``index`` is zero-based internally (the paper writes ``s_1 .. s_S``;
    we write ``obj(0) .. obj(S-1)``).  The paper's model has the single
    writer ``writer(0)``; the MWMR extension admits writers of any index,
    each with a globally unique writer id used in tag arbitration.
    """

    role: str
    index: int

    def __post_init__(self) -> None:
        if self.role not in _VALID_ROLES:
            raise ValueError(f"unknown process role: {self.role!r}")
        if self.index < 0:
            raise ValueError(f"negative process index: {self.index}")

    # -- convenience predicates ------------------------------------------
    @property
    def is_object(self) -> bool:
        return self.role == ROLE_OBJECT

    @property
    def is_reader(self) -> bool:
        return self.role == ROLE_READER

    @property
    def is_writer(self) -> bool:
        return self.role == ROLE_WRITER

    @property
    def is_client(self) -> bool:
        """Clients are the writer and the readers (Section 2)."""
        return self.role != ROLE_OBJECT

    def __hash__(self) -> int:
        # Process ids key every inbox, slot and grouping dict on the hot
        # path; both fields are immutable, so hash once.
        cached = self.__dict__.get("_hash")
        if cached is None:
            cached = hash((self.role, self.index))
            object.__setattr__(self, "_hash", cached)
        return cached

    def __getstate__(self) -> Dict[str, Any]:
        # Never pickle the lazily cached hash: state fingerprints compare
        # pickled bytes, and equal ids must pickle identically.
        return {k: v for k, v in self.__dict__.items() if k != "_hash"}

    def __repr__(self) -> str:
        prefix = {"writer": "w", "reader": "r", "object": "s"}[self.role]
        if self.is_writer:
            # The classic single writer keeps its historical name "w";
            # additional MWMR writers are numbered like readers/objects.
            return "w" if self.index == 0 else f"w{self.index + 1}"
        return f"{prefix}{self.index + 1}"


@functools.lru_cache(maxsize=None)
def obj(i: int) -> ProcessId:
    """The base object ``s_{i+1}`` (zero-based index ``i``).

    Memoized: broadcast rounds construct the same ids over and over, and
    ids are immutable value objects safe to share.
    """
    return ProcessId(ROLE_OBJECT, i)


@functools.lru_cache(maxsize=None)
def reader(j: int) -> ProcessId:
    """The reader ``r_{j+1}`` (zero-based index ``j``)."""
    return ProcessId(ROLE_READER, j)


@functools.lru_cache(maxsize=None)
def writer(k: int = 0) -> ProcessId:
    """The writer with id ``k`` (``writer(0)`` is the paper's ``w``)."""
    return ProcessId(ROLE_WRITER, k)


#: The classic single writer process (= ``writer(0)``).
WRITER = ProcessId(ROLE_WRITER, 0)


# ---------------------------------------------------------------------------
# Timestamps and values
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class TimestampValue:
    """A timestamp-value pair ``<(ts, wid), v>`` -- the object's ``pw`` field.

    ``ts`` is the writer's epoch and ``wid`` the writer id; together they
    form the :class:`WriterTag` that totally orders writes (``wid`` breaks
    epoch ties between concurrent writers).  The single-writer library is
    the ``wid == 0`` special case, so every legacy constructor call keeps
    its meaning.  Equality compares all fields (the safety argument
    distinguishes ``<k, val_k>`` from a forged ``<k, v'>``); ordering is
    by tag first with ties broken on the value's ``repr`` so ordering
    stays total for heterogeneous payloads.
    """

    ts: int
    value: Any
    wid: int = 0

    @property
    def tag(self) -> WriterTag:
        # Hot path: object guards and candidate ordering compare tags on
        # every message; the pair is immutable, so build it once.
        cached = self.__dict__.get("_tag")
        if cached is None:
            cached = WriterTag(self.ts, self.wid)
            object.__setattr__(self, "_tag", cached)
        return cached

    def _order_key(self) -> Tuple[int, int, str]:
        return (self.ts, self.wid, repr(self.value))

    def __lt__(self, other: "TimestampValue") -> bool:
        return self._order_key() < other._order_key()

    def __le__(self, other: "TimestampValue") -> bool:
        return self._order_key() <= other._order_key()

    def __gt__(self, other: "TimestampValue") -> bool:
        return self._order_key() > other._order_key()

    def __ge__(self, other: "TimestampValue") -> bool:
        return self._order_key() >= other._order_key()

    def __post_init__(self) -> None:
        if self.ts < 0:
            raise ValueError("timestamps are non-negative integers")
        if self.wid < 0:
            raise ValueError("writer ids are non-negative integers")
        if self.ts == 0 and not isinstance(self.value, _Bottom):
            raise ValueError("timestamp 0 is reserved for the initial value ⊥")
        if self.ts > 0 and isinstance(self.value, _Bottom):
            raise ValueError("⊥ is not a valid input value for a WRITE")

    def __hash__(self) -> int:
        # Hot path: candidate sets and history maps hash pairs constantly;
        # all fields are immutable, so compute once and stash the result.
        cached = self.__dict__.get("_hash")
        if cached is None:
            cached = hash((self.ts, self.wid, self.value))
            object.__setattr__(self, "_hash", cached)
        return cached

    def __getstate__(self) -> Dict[str, Any]:
        # Cached fields are lazily populated and process-local (string
        # hashing is seeded) and must not leak into pickles: state
        # fingerprints compare pickled bytes, so lazily cached fields
        # would make equal states diverge.
        return {k: v for k, v in self.__dict__.items()
                if k not in ("_hash", "_tag")}

    def __repr__(self) -> str:
        if self.wid:
            return f"<{self.ts}.{self.wid},{self.value!r}>"
        return f"<{self.ts},{self.value!r}>"


#: ``pw_0 = <0, ⊥>`` -- the initial timestamp-value pair of every object.
INITIAL_TSVAL = TimestampValue(0, BOTTOM)


class TsrArray:
    """Immutable ``S x R`` array of reader timestamps (``tsrarray``).

    Entry ``(i, j)`` is the timestamp of reader ``r_{j+1}`` that object
    ``s_{i+1}`` reported to the writer in the PW round, or ``None`` (the
    paper's ``nil``) if the writer received no PW-ack from that object.

    The array is stored as a tuple of rows so instances are hashable and can
    participate in candidate *sets*; use :meth:`with_row` to derive updated
    copies.
    """

    __slots__ = ("_rows", "_hash")

    def __init__(self,
                 rows: Tuple[Tuple[Optional[int], ...], ...]) -> None:
        self._rows = rows
        self._hash: Optional[int] = None

    # -- constructors -----------------------------------------------------
    @classmethod
    def empty(cls, num_objects: int, num_readers: int) -> "TsrArray":
        """The paper's ``inittsrarray``: every entry ``nil``."""
        row = (None,) * num_readers
        return cls(tuple(row for _ in range(num_objects)))

    @classmethod
    def from_lists(
            cls, rows: Iterable[Iterable[Optional[int]]]) -> "TsrArray":
        return cls(tuple(tuple(r) for r in rows))

    # -- accessors ---------------------------------------------------------
    @property
    def num_objects(self) -> int:
        return len(self._rows)

    @property
    def num_readers(self) -> int:
        return len(self._rows[0]) if self._rows else 0

    def get(self, i: int, j: int) -> Optional[int]:
        """``tsrarray[i][j]`` with zero-based indices."""
        return self._rows[i][j]

    def row(self, i: int) -> Tuple[Optional[int], ...]:
        return self._rows[i]

    def column(self, j: int) -> Tuple[Optional[int], ...]:
        """All objects' reported timestamps for reader ``j``."""
        return tuple(r[j] for r in self._rows)

    def non_nil_rows_for_reader(self, j: int) -> Tuple[int, ...]:
        """Indices ``i`` with a non-nil entry for reader ``j``."""
        return tuple(i for i, r in enumerate(self._rows) if r[j] is not None)

    # -- derivation --------------------------------------------------------
    def with_row(self, i: int, row: Tuple[Optional[int], ...]) -> "TsrArray":
        """A copy with row ``i`` replaced (used by the writer's PW acks)."""
        if len(row) != self.num_readers:
            raise ValueError("row width must equal the number of readers")
        rows = list(self._rows)
        rows[i] = tuple(row)
        return TsrArray(tuple(rows))

    def with_entry(self, i: int, j: int, value: Optional[int]) -> "TsrArray":
        row = list(self._rows[i])
        row[j] = value
        return self.with_row(i, tuple(row))

    # -- dunder ------------------------------------------------------------
    def __iter__(self) -> Iterator[Tuple[Optional[int], ...]]:
        return iter(self._rows)

    def __eq__(self, other: object) -> bool:
        return isinstance(other, TsrArray) and self._rows == other._rows

    def __hash__(self) -> int:
        # Candidate-set bookkeeping hashes the same arrays over and over;
        # rows are immutable, so the hash is computed once.
        if self._hash is None:
            self._hash = hash(self._rows)
        return self._hash

    def __getstate__(
            self) -> Tuple[Tuple[Tuple[Optional[int], ...], ...]]:
        # Wrapped in a 1-tuple (a bare empty rows tuple would be falsy and
        # skip __setstate__); never pickle the process-local hash cache.
        return (self._rows,)

    def __setstate__(
            self,
            state: Tuple[Tuple[Tuple[Optional[int], ...], ...]]) -> None:
        (self._rows,) = state
        self._hash = None

    def __repr__(self) -> str:
        populated = sum(
            1 for r in self._rows for cell in r if cell is not None
        )
        return f"TsrArray({self.num_objects}x{self.num_readers}, {populated} set)"

    def entries(self) -> Iterator[Tuple[int, int, Optional[int]]]:
        """Iterate ``(i, j, value)`` over all cells."""
        for i, r in enumerate(self._rows):
            for j, cell in enumerate(r):
                yield i, j, cell


@dataclass(frozen=True)
class WriteTuple:
    """The object's ``w`` field: ``<tsval, tsrarray>`` (Section 4.1).

    ``tsval`` is the timestamp-value pair installed by the write with
    timestamp ``tsval.ts``; ``tsrarray`` is the snapshot of reader
    timestamps the writer gathered in that write's PW round.  The reader's
    *conflict* predicate inspects ``tsrarray`` to unmask malicious objects
    that claim to have seen reader timestamps from the future.
    """

    tsval: TimestampValue
    tsrarray: TsrArray

    @property
    def ts(self) -> int:
        return self.tsval.ts

    @property
    def tag(self) -> WriterTag:
        return self.tsval.tag

    @property
    def value(self) -> Any:
        return self.tsval.value

    def __hash__(self) -> int:
        cached = self.__dict__.get("_hash")
        if cached is None:
            cached = hash((self.tsval, self.tsrarray))
            object.__setattr__(self, "_hash", cached)
        return cached

    def __getstate__(self) -> Dict[str, Any]:
        return {k: v for k, v in self.__dict__.items() if k != "_hash"}

    def __repr__(self) -> str:
        return f"W({self.tsval!r})"


@functools.lru_cache(maxsize=65536)
def intern_write_tuple(tsval: TimestampValue,
                       tsrarray: TsrArray) -> WriteTuple:
    """One shared :class:`WriteTuple` per ``(tag, shape)`` contents.

    Wire decoding re-materializes the same logical write tuple once per
    replica per round; interning makes those decodes pointer-equal, so
    candidate-set membership, history lookups and equality checks on the
    reader's hot path hit the identity fast path exactly as they do on
    the in-memory transport (where every replica shares the writer's one
    instance).  Bounded: pathological workloads fall back to fresh
    instances rather than growing without bound.
    """
    return WriteTuple(tsval, tsrarray)


@functools.lru_cache(maxsize=None)
def initial_write_tuple(num_objects: int, num_readers: int) -> WriteTuple:
    """``w_0 = <<0, ⊥>, inittsrarray>`` -- initial ``w`` field of objects.

    Memoized: the tuple is immutable and every register slot of every
    object starts from it, so multiplexed stores share one instance per
    system shape (identity-equal values also make candidate-set lookups
    hit the pointer fast path).
    """
    return WriteTuple(INITIAL_TSVAL, TsrArray.empty(num_objects, num_readers))


# ---------------------------------------------------------------------------
# Fresh-name helpers
# ---------------------------------------------------------------------------

_op_counter = itertools.count(1)


def fresh_operation_id() -> int:
    """Process-wide unique operation identifiers for tracing."""
    return next(_op_counter)


def reset_operation_ids(start: int = 1) -> None:
    """Restart the operation-id stream (chaos-harness replay only).

    Operation ids double as protocol nonces, so they end up inside
    automaton and client state; two otherwise identical runs in one
    process would differ just because the global stream advanced.  The
    chaos harness resets the stream before each run so that the same
    ``(seed, scenario)`` pair produces a bit-identical state
    fingerprint.  Never call this while a system built earlier in the
    process is still running: id reuse *within* one system could
    cross-match a stale in-flight nonce.
    """
    global _op_counter
    _op_counter = itertools.count(start)
