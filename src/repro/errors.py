"""Exception hierarchy for the ``repro`` library.

Every error raised by the library derives from :class:`ReproError` so that
callers can catch library failures with a single ``except`` clause while
still being able to distinguish configuration mistakes from protocol-level
anomalies detected at runtime.
"""

from __future__ import annotations

from typing import Any


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` library."""


class ConfigurationError(ReproError):
    """A system configuration violates a structural requirement.

    Examples: a negative number of objects, more Byzantine failures than
    total failures (``b > t``), or a fault plan that assigns more faults
    than the configuration tolerates.
    """


class ResilienceError(ConfigurationError):
    """The number of base objects is insufficient for the protocol.

    The optimal resilience bound for unauthenticated robust storage is
    ``S >= 2t + b + 1`` (Martin, Alvisi & Dahlin [17]); protocols refuse to
    instantiate below their documented threshold rather than silently
    losing safety or liveness.
    """


class SimulationError(ReproError):
    """The simulation kernel was driven into an inconsistent state."""


class SchedulerExhaustedError(SimulationError):
    """No deliverable event remains but some operation is still pending.

    Under the paper's fairness assumption every message sent to a correct
    process is eventually delivered; hitting this error means the chosen
    fault plan / scheduler starved an operation that the protocol's
    wait-freedom theorem says must complete -- i.e. either the scheduler
    dropped messages it was not allowed to drop, or a genuine liveness bug
    was found.
    """


class ProtocolError(ReproError):
    """A protocol automaton received input that violates its contract."""


class PendingOperationError(ProtocolError):
    """A client invoked an operation while a previous one is in progress.

    The model of Section 2.2 of the paper states that each client invokes
    at most one operation at a time (well-formedness).
    """


class SpecificationViolation(ReproError):
    """A recorded history violates a register specification.

    Raised by the checkers in :mod:`repro.spec` when asked to *assert*
    rather than merely report.  The attached :attr:`explanation` is a
    human-readable account of the offending operations.
    """

    def __init__(self, explanation: str) -> None:
        super().__init__(explanation)
        self.explanation = explanation


class FencedWriteError(ProtocolError):
    """A WRITE was rejected by an epoch fence installed at the objects.

    Reconfiguration (:mod:`repro.service.reconfig`) fences a register
    before handing it to another shard group: base objects refuse write
    rounds whose ``(epoch, writer_id)`` tag lies below the fence and
    report the refusal.  Once ``b + 1`` objects report it, at least one
    correct object is fenced, so the write can never gather a quorum --
    the operation aborts with this error instead of hanging.  Callers
    should re-route the write to the register's new home and retry.
    """


class ConsistencyError(ConfigurationError):
    """A session requested stronger semantics than the protocol provides.

    The client API (:mod:`repro.api`) lets a session declare the register
    semantics it relies on (safe < regular < atomic, Lamport's hierarchy).
    The declaration is checked against what the cluster's protocol
    actually emulates, so a deployment swap that silently weakens
    semantics fails loudly at session creation -- not in production data.
    """


class AuthenticationError(ReproError):
    """A simulated signature failed verification (:mod:`repro.crypto_sim`)."""


class RetryExhaustedError(ReproError):
    """A session retried an operation to its policy's limit and gave up.

    Raised by :class:`~repro.api.Session` when a
    :class:`~repro.api.RetryPolicy` absorbed as many
    :class:`FencedWriteError` / :class:`BackpressureError` /
    :class:`BusyRegisterError` failures as it allows.  The final failure
    is chained (``__cause__``) and kept in :attr:`last_error`.
    """

    def __init__(self, message: str, attempts: int,
                 last_error: Exception) -> None:
        super().__init__(message)
        self.attempts = attempts
        self.last_error = last_error


class SnapshotContentionError(ReproError):
    """A cross-shard snapshot could not converge on a consistent cut.

    :meth:`~repro.api.Session.snapshot` repeats tag collects until two
    consecutive collects agree on every key's tag; under sustained write
    pressure on every snapshotted key that may never happen within the
    bounded number of rounds.  :attr:`unstable_keys` lists the keys whose
    tags were still moving in the final round.
    """

    def __init__(self, message: str, rounds: int,
                 unstable_keys: list) -> None:
        super().__init__(message)
        self.rounds = rounds
        self.unstable_keys = unstable_keys


class PreconditionFailedError(ProtocolError):
    """A conditional write's expected version tag did not match.

    Raised by :meth:`~repro.api.Session.put_if` when the key's observed
    ``(epoch, writer_id)`` tag differs from the caller's expectation.
    The check is optimistic (read-compare-write, not a wire-level CAS):
    a concurrent writer can still slip between the compare and the
    write, but a *stale* expectation always fails fast here instead of
    silently clobbering the newer value.  :attr:`expected` and
    :attr:`observed` carry both tags (``None`` for "never written").
    """

    def __init__(self, message: str, expected: Any,
                 observed: Any) -> None:
        super().__init__(message)
        self.expected = expected
        self.observed = observed


class TransportError(ReproError):
    """An asyncio runtime transport failed (:mod:`repro.runtime`)."""


class ReplicaUnavailableError(TransportError):
    """A replica's transport endpoint is (momentarily) unreachable.

    The typed form of a broken socket: a peer that died mid-connection
    surfaces as :class:`ConnectionResetError`/:class:`BrokenPipeError`
    at the OS level, which no retry policy can be expected to pattern-
    match.  The TCP client maps those to this error after one immediate
    reconnect attempt fails, so a :class:`~repro.api.RetryPolicy`
    absorbs the window in which a killed replica process is being
    restarted by its supervisor.
    """


class BusyRegisterError(TransportError):
    """A client host already has an operation in flight on the register.

    Raised at admission time by :class:`~repro.runtime.hosts.
    MuxClientHost`: one client process drives at most one operation per
    register at a time (well-formedness per register).  Callers that
    share a host -- e.g. the reconfiguration coordinator snapshotting a
    key an application reader is also reading -- should yield and retry.
    """


class BackpressureError(TransportError):
    """A multiplexed client host refused to admit more pending operations.

    :class:`~repro.runtime.hosts.MuxClientHost` caps the number of
    registers with an operation in flight; beyond the cap new admissions
    are rejected immediately instead of silently queueing behind thousands
    of registers sharing one inbox.  Callers should back off and retry.
    """


class WriterLeaseExhaustedError(TransportError):
    """Every writer identity of the cluster is leased to a live session.

    The client API hands each writing session an exclusive writer index
    (writer ids must be unique for ``(epoch, writer_id)`` tag arbitration
    to totally order writes).  ``config.num_writers`` bounds the pool;
    when all indices are out, opening another writing session fails with
    this error instead of silently sharing an identity.  Close a session
    (releasing its lease) or configure more writers.
    """
