"""Threshold quorum arithmetic used across the protocols and their proofs.

All protocols in this library use *threshold* quorums: a client treats any
set of ``S - t`` base objects as a quorum, because ``t`` objects may never
respond.  The correctness arguments of the paper rest on a handful of
counting lemmas over such quorums; this module states them as executable
functions so both the protocols and the property-based tests can rely on a
single, audited source of arithmetic.

Notation: ``S`` objects, at most ``t`` faulty, at most ``b <= t`` of the
faulty ones Byzantine.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence, Set, TypeVar

from .config import SystemConfig

T = TypeVar("T")


def quorum_size(config: SystemConfig) -> int:
    """``S - t``: the most replies a round can safely wait for."""
    return config.num_objects - config.t


def min_correct_in_quorum(config: SystemConfig) -> int:
    """Correct objects guaranteed inside any ``S - t`` quorum.

    At most ``t`` members of the quorum are faulty, so at least
    ``(S - t) - t`` are correct.  At optimal resilience ``S = 2t + b + 1``
    this equals ``b + 1`` -- the count the paper's ``safe(c)`` predicate is
    built around.
    """
    return quorum_size(config) - config.t


def min_nonmalicious_in_quorum(config: SystemConfig) -> int:
    """Non-Byzantine objects guaranteed inside any ``S - t`` quorum.

    At most ``b`` quorum members lie arbitrarily, so at least
    ``(S - t) - b`` answer from genuine state (they may later crash, but
    they never fabricate).  At optimal resilience: ``2t + 1 - t = t + 1``.
    """
    return quorum_size(config) - config.b


def quorum_intersection(config: SystemConfig) -> int:
    """Minimum overlap of two ``S - t`` quorums: ``S - 2t``.

    At optimal resilience this is ``b + 1``: any write quorum and any read
    quorum share at least one object that is not Byzantine... almost -- the
    overlap itself may contain up to ``b`` Byzantine objects, which is why
    the protocols need ``b + 1`` *matching confirmations*, not one.
    """
    return config.num_objects - 2 * config.t


def correct_quorum_intersection(config: SystemConfig) -> int:
    """Guaranteed *non-Byzantine* overlap of two ``S - t`` quorums.

    ``S - 2t - b``; positive exactly when ``S >= 2t + b + 1``, i.e. at or
    above optimal resilience.  This single inequality is where the
    resilience bound of [17] comes from.
    """
    return config.num_objects - 2 * config.t - config.b


def byzantine_indistinguishability_margin(config: SystemConfig) -> int:
    """``S - (2t + 2b)``: slack above the fast-read impossibility bound.

    Non-positive values mean Proposition 1 applies: some read must take a
    second round in the worst case.
    """
    return config.num_objects - (2 * config.t + 2 * config.b)


@dataclass(frozen=True)
class QuorumProfile:
    """All derived quorum constants for a configuration, in one view."""

    config: SystemConfig
    quorum: int
    min_correct: int
    min_nonmalicious: int
    intersection: int
    correct_intersection: int
    fast_read_margin: int

    @classmethod
    def of(cls, config: SystemConfig) -> "QuorumProfile":
        return cls(
            config=config,
            quorum=quorum_size(config),
            min_correct=min_correct_in_quorum(config),
            min_nonmalicious=min_nonmalicious_in_quorum(config),
            intersection=quorum_intersection(config),
            correct_intersection=correct_quorum_intersection(config),
            fast_read_margin=byzantine_indistinguishability_margin(config),
        )


def is_quorum(config: SystemConfig, members: Iterable[T]) -> bool:
    """Whether a set of distinct responders constitutes a quorum."""
    return len(set(members)) >= quorum_size(config)


def smallest_live_quorum(config: SystemConfig,
                         crashed: Set[int]) -> Sequence[int]:
    """Indices of a canonical quorum avoiding ``crashed`` objects.

    Raises ``ValueError`` when fewer than ``S - t`` objects remain alive --
    a fault plan that breaks the model's own assumption.
    """
    alive = [i for i in range(config.num_objects) if i not in crashed]
    if len(alive) < quorum_size(config):
        raise ValueError(
            f"only {len(alive)} live objects; a quorum needs "
            f"{quorum_size(config)}"
        )
    return alive[: quorum_size(config)]


def confirmation_threshold(config: SystemConfig) -> int:
    """``b + 1``: matching reports that cannot all be fabrications."""
    return config.b + 1


def elimination_threshold(config: SystemConfig) -> int:
    """``t + b + 1``: reports-without-``c`` that rule a candidate out.

    If ``t + b + 1`` distinct objects respond *without* a candidate value,
    at least ``t + 1`` of them are non-Byzantine and at least one of those
    is correct-and-up-to-date, so the candidate was never durably written
    (Figure 4, lines 27-28; Figure 6 ``invalid``).
    """
    return config.t + config.b + 1
