"""System configuration: failure thresholds and process counts.

The paper's model (Section 2) is parameterized by:

* ``S``  -- number of base objects,
* ``t``  -- maximum number of faulty objects,
* ``b``  -- maximum number of *malicious* (Byzantine) objects among the
  ``t`` faulty ones, with ``0 < b <= t`` for the main results,
* ``R``  -- number of readers (one writer always).

:class:`SystemConfig` validates these and exposes the derived quantities the
protocols use throughout: the quorum size ``S - t``, the optimal-resilience
bound ``2t + b + 1`` [17], and the fast-read impossibility threshold
``2t + 2b`` (Proposition 1).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import List, Optional

from .errors import ConfigurationError, ResilienceError
from .types import ProcessId, WRITER, obj, reader, writer


def optimal_resilience(t: int, b: int) -> int:
    """Minimum number of objects for robust unauthenticated storage.

    ``S = 2t + b + 1`` -- shown optimal in [17] for ``b = t`` and extended
    to general ``b <= t`` in the paper (Section 1).
    """
    return 2 * t + b + 1


def fast_read_impossibility_threshold(t: int, b: int) -> int:
    """Largest ``S`` for which fast (1-round) safe reads are impossible.

    Proposition 1: with at most ``2t + 2b`` objects no safe storage has all
    reads fast.  Equivalently, fast reads *require* ``S >= 2t + 2b + 1``.
    """
    return 2 * t + 2 * b


@dataclass(frozen=True)
class SystemConfig:
    """Validated system parameters.

    Use the constructors :meth:`optimal` (``S = 2t + b + 1``) or
    :meth:`with_objects` for explicit ``S``.  ``num_readers`` defaults to 1
    (the SWSR setting of the lower bound); the storage algorithms support
    any ``R >= 1``.  ``num_writers`` defaults to 1 (the paper's SWMR
    model); configuring more writers switches the protocols into MWMR
    mode -- writers discover and bump ``(epoch, writer_id)`` tags instead
    of trusting a local counter, and objects acknowledge stale-tagged
    write rounds so a losing writer still terminates.
    """

    t: int
    b: int
    num_objects: int
    num_readers: int = 1
    num_writers: int = 1
    #: Serialization of the socket transports: ``"binary"`` (the fast
    #: struct-packed framing) or ``"json"`` (the legacy line format).
    #: Inbound frames of either format always decode -- this selects
    #: what *this* system emits.
    wire_format: str = "binary"
    #: Where base objects run: ``"inproc"`` (asyncio tasks on the
    #: in-memory network -- the historical deployment) or
    #: ``"multiproc"`` (each replica / shard group is a child OS
    #: process serving :class:`~repro.runtime.tcp.TcpObjectServer` on
    #: the binary wire format, supervised with health checks, WAL +
    #: snapshot durability and automatic restart).
    deployment: str = "inproc"
    #: Write-ahead-log fsync policy of multiproc replicas: ``"always"``
    #: (fsync per durable record), ``"batch"`` (fsync every few records
    #: and at snapshot/close -- the default), ``"never"`` (leave it to
    #: the OS; still torn-tail safe, but the tail may be shorter).
    wal_fsync: str = "batch"

    def __post_init__(self) -> None:
        if self.wire_format not in ("binary", "json"):
            raise ConfigurationError(
                f"unknown wire format {self.wire_format!r}; "
                f"expected 'binary' or 'json'")
        if self.deployment not in ("inproc", "multiproc"):
            raise ConfigurationError(
                f"unknown deployment {self.deployment!r}; "
                f"expected 'inproc' or 'multiproc'")
        if self.wal_fsync not in ("always", "batch", "never"):
            raise ConfigurationError(
                f"unknown WAL fsync policy {self.wal_fsync!r}; "
                f"expected 'always', 'batch' or 'never'")
        if self.t < 0:
            raise ConfigurationError("t must be non-negative")
        if self.b < 0:
            raise ConfigurationError("b must be non-negative")
        if self.b > self.t:
            raise ConfigurationError(
                f"Byzantine failures are a subset of all failures: "
                f"b={self.b} > t={self.t}"
            )
        if self.num_readers < 1:
            raise ConfigurationError("at least one reader is required")
        if self.num_writers < 1:
            raise ConfigurationError("at least one writer is required")
        if self.num_objects < 1:
            raise ConfigurationError("at least one base object is required")
        if self.num_objects <= self.t:
            raise ConfigurationError(
                f"S={self.num_objects} objects cannot tolerate t={self.t} "
                "failures: no correct quorum would remain"
            )

    # -- constructors ------------------------------------------------------
    @classmethod
    def optimal(cls, t: int, b: int, num_readers: int = 1,
                num_writers: int = 1) -> "SystemConfig":
        """Optimally resilient configuration: ``S = 2t + b + 1``."""
        return cls(t=t, b=b, num_objects=optimal_resilience(t, b),
                   num_readers=num_readers, num_writers=num_writers)

    @classmethod
    def with_objects(cls, t: int, b: int, num_objects: int,
                     num_readers: int = 1,
                     num_writers: int = 1) -> "SystemConfig":
        return cls(t=t, b=b, num_objects=num_objects,
                   num_readers=num_readers, num_writers=num_writers)

    @classmethod
    def at_impossibility_threshold(cls, t: int, b: int,
                                   num_readers: int = 1) -> "SystemConfig":
        """The ``S = 2t + 2b`` configuration of the lower-bound proof."""
        return cls(t=t, b=b,
                   num_objects=fast_read_impossibility_threshold(t, b),
                   num_readers=num_readers)

    def with_deployment(self, deployment: str,
                        wal_fsync: Optional[str] = None) -> "SystemConfig":
        """The same configuration under another deployment topology."""
        if wal_fsync is None:
            return replace(self, deployment=deployment)
        return replace(self, deployment=deployment, wal_fsync=wal_fsync)

    # -- derived quantities --------------------------------------------------
    @property
    def S(self) -> int:  # noqa: N802 - matches the paper's notation
        return self.num_objects

    @property
    def quorum_size(self) -> int:
        """``S - t``: replies a client may safely wait for in one round."""
        return self.num_objects - self.t

    @property
    def is_optimally_resilient(self) -> bool:
        return self.num_objects == optimal_resilience(self.t, self.b)

    @property
    def meets_optimal_resilience(self) -> bool:
        return self.num_objects >= optimal_resilience(self.t, self.b)

    @property
    def fast_reads_possible(self) -> bool:
        """Whether Proposition 1 permits fast reads at this size."""
        return self.num_objects > fast_read_impossibility_threshold(self.t, self.b)

    @property
    def max_crash_only(self) -> int:
        """Objects that may crash but not behave arbitrarily: ``t - b``."""
        return self.t - self.b

    @property
    def is_multi_writer(self) -> bool:
        """Whether protocols must run the MWMR tag-discovery write path."""
        return self.num_writers > 1

    # -- process enumeration -------------------------------------------------
    def objects(self) -> List[ProcessId]:
        return [obj(i) for i in range(self.num_objects)]

    def readers(self) -> List[ProcessId]:
        return [reader(j) for j in range(self.num_readers)]

    def writers(self) -> List[ProcessId]:
        return [writer(k) for k in range(self.num_writers)]

    def clients(self) -> List[ProcessId]:
        return self.writers() + self.readers()

    def all_processes(self) -> List[ProcessId]:
        return self.clients() + self.objects()

    # -- guards ---------------------------------------------------------------
    def require_optimal_resilience(self, protocol: str) -> None:
        """Raise :class:`ResilienceError` if ``S < 2t + b + 1``."""
        needed = optimal_resilience(self.t, self.b)
        if self.num_objects < needed:
            raise ResilienceError(
                f"{protocol} requires S >= 2t + b + 1 = {needed} base "
                f"objects for t={self.t}, b={self.b}; got S={self.num_objects}"
            )

    def describe(self) -> str:
        writers = (f", {self.num_writers} writers"
                   if self.num_writers > 1 else "")
        return (
            f"S={self.num_objects} objects, t={self.t} faulty (b={self.b} "
            f"Byzantine), {self.num_readers} reader(s){writers}, "
            f"quorum={self.quorum_size}"
        )
