"""The client API: sessions over the sharded storage service.

This package is the documented way to *use* the system (the service
tier underneath remains the mechanism).  It separates session concerns
-- identity, retries, declared consistency -- from transport:

* :class:`Cluster` owns topology and lifecycle (a
  :class:`~repro.service.ShardedKVStore` plus, behind
  :meth:`Cluster.admin`, the reconfiguration coordinator and fault
  injection);
* :class:`Session` (from :meth:`Cluster.session`) leases an exclusive
  writer identity, absorbs transient failures per its
  :class:`RetryPolicy`, and declares the :class:`Consistency` level it
  relies on;
* :meth:`Session.snapshot` is the capability the raw tier lacks: a
  cross-shard multi-key read returning a consistent cut, certified by
  converging ``(epoch, writer_id)`` tag collects and checkable with
  :func:`~repro.spec.checkers.check_snapshot_consistency`.

See ``examples/replicated_kv_store.py`` for the end-to-end tour and the
README's *Using the KV service* section for the migration table from
the raw ``put(key, value, writer_index=...)`` idioms.
"""

from .cluster import Admin, Cluster
from .leases import WriterLeaseAllocator
from .policy import Consistency, RETRYABLE, RetryPolicy
from .session import Session, Snapshot

__all__ = [
    "Admin",
    "Cluster",
    "Consistency",
    "RETRYABLE",
    "RetryPolicy",
    "Session",
    "Snapshot",
    "WriterLeaseAllocator",
]
