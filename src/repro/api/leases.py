"""Writer-identity leases: exclusive writer indices for sessions.

Tag arbitration orders concurrent writes by ``(epoch, writer_id)``; the
whole construction rests on writer ids being unique per concurrently
writing client.  The service tier exposes that as a raw ``writer_index``
argument and trusts callers to keep indices disjoint.  The client API
removes the trust: a :class:`WriterLeaseAllocator` owns the cluster's
``config.num_writers`` indices and leases each to at most one live
session at a time, so two sessions can never write under the same
identity by accident.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from ..errors import TransportError, WriterLeaseExhaustedError


class WriterLeaseAllocator:
    """Leases writer indices ``0 .. num_writers-1``, each to one holder.

    Single event loop, so no locking: acquire/release are plain calls.
    Indices are recycled lowest-first, which keeps single-session
    clusters on the classic writer 0 (the paper's ``w``) and makes runs
    reproducible.
    """

    def __init__(self, num_writers: int):
        if num_writers < 1:
            raise TransportError("a cluster needs at least one writer")
        self.num_writers = num_writers
        self._free: List[int] = list(range(num_writers))
        #: leased index -> holder (for error messages and introspection).
        self._holders: Dict[int, Any] = {}

    def acquire(self, holder: Any = None) -> int:
        if not self._free:
            raise WriterLeaseExhaustedError(
                f"all {self.num_writers} writer identities are leased "
                f"(holders: {sorted(map(repr, self._holders.values()))}); "
                f"close a session or raise config.num_writers")
        index = self._free.pop(0)
        self._holders[index] = holder
        return index

    def release(self, index: int) -> None:
        """Return a leased index to the pool (idempotent per lease)."""
        if index not in self._holders:
            raise TransportError(
                f"writer index {index} is not currently leased")
        del self._holders[index]
        # Keep the free list sorted so acquisition order is deterministic.
        self._free.append(index)
        self._free.sort()

    def holder_of(self, index: int) -> Optional[Any]:
        return self._holders.get(index)

    @property
    def leased(self) -> List[int]:
        return sorted(self._holders)

    @property
    def available(self) -> int:
        return len(self._free)

    def __repr__(self) -> str:
        return (f"WriterLeaseAllocator({len(self._holders)}/"
                f"{self.num_writers} leased)")


__all__ = ["WriterLeaseAllocator"]
