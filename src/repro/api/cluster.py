"""The cluster facade: topology + lifecycle behind one handle.

:class:`Cluster` is the one documented entry point to the storage
service.  It owns a :class:`~repro.service.ShardedKVStore` (construction
and lifecycle), an exclusive-writer lease pool sized by
``config.num_writers``, and -- behind :meth:`Cluster.admin` -- the
control plane (:class:`~repro.service.ReconfigCoordinator` plus fault
injection).  Applications talk to it only through
:meth:`Cluster.session`::

    cluster = Cluster(CachedRegularStorageProtocol,
                      SystemConfig.optimal(t=1, b=1, num_readers=2,
                                           num_writers=4),
                      num_shards=2)
    async with cluster:
        async with cluster.session(consistency=Consistency.REGULAR) as s:
            await s.put("user:42", "ada")
            snap = await s.snapshot(["user:42", "user:43"])
"""

from __future__ import annotations

import itertools
from typing import Any, Callable, List, Optional

from ..automata.base import ObjectAutomaton
from ..config import SystemConfig
from ..errors import ConfigurationError
from ..protocols import StorageProtocol
from ..service.reconfig import ReconfigCoordinator, ReconfigReport
from ..service.sharded import ShardedKVStore
from ..service.store import MultiRegisterStore
from ..spec.checkers import (CheckResult, check_per_register,
                             check_snapshot_consistency)
from ..spec.histories import History
from .leases import WriterLeaseAllocator
from .policy import Consistency, RetryPolicy
from .session import Session


class Admin:
    """The cluster's control plane, separated from the data plane.

    Reconfiguration and fault injection are operator verbs, not
    application verbs; sessions cannot reach them.  All methods delegate
    to the underlying :class:`~repro.service.ReconfigCoordinator` /
    store -- one coordinator per cluster, so fence traffic shares each
    shard store's control host.
    """

    def __init__(self, cluster: "Cluster"):
        self._cluster = cluster
        self.coordinator = ReconfigCoordinator(cluster.kv)

    # -- reconfiguration ----------------------------------------------------
    async def add_shard(self, shard_id: Optional[int] = None,
                        store: Optional[MultiRegisterStore] = None
                        ) -> ReconfigReport:
        """Grow the ring by one shard group (live, epoch-fenced handoff)."""
        return await self.coordinator.add_shard(shard_id, store)

    async def remove_shard(self, shard_id: int) -> ReconfigReport:
        """Drain one shard group and retire it."""
        return await self.coordinator.remove_shard(shard_id)

    async def heal_replica(self, shard_id: int, index: int,
                           automaton: Optional[ObjectAutomaton] = None
                           ) -> ReconfigReport:
        """Replace one (crashed) base object and re-install its values."""
        return await self.coordinator.heal_replica(shard_id, index,
                                                   automaton)

    # -- fault injection ----------------------------------------------------
    def compromise_replica(self, key: str, index: int,
                           automaton: ObjectAutomaton) -> None:
        """Turn one replica of the shard group holding ``key`` Byzantine."""
        self._cluster.kv.compromise_replica(key, index, automaton)

    def crash_replica(self, key: str, index: int) -> None:
        self._cluster.kv.crash_replica(key, index)

    # -- verification -------------------------------------------------------
    def check(self, checker: Optional[Callable[[History], CheckResult]]
              = None) -> CheckResult:
        """Check the recorded history: per-register semantics + snapshots.

        Runs ``checker`` (default: regularity, which auto-delegates to
        the tag-based multi-writer checker) over every register's
        sub-history and :func:`~repro.spec.checkers.
        check_snapshot_consistency` over every recorded snapshot, merged
        into one result.  Requires the cluster to have been built with
        ``record_history=True``.
        """
        history = self._cluster.history
        if history is None:
            raise ConfigurationError(
                "no history recorded; build the Cluster with "
                "record_history=True to use admin().check()")
        per_register = check_per_register(history, checker)
        snapshots = check_snapshot_consistency(history)
        merged = CheckResult(
            f"{per_register.property_name} + {snapshots.property_name}")
        merged.checked_reads = (per_register.checked_reads
                                + snapshots.checked_reads)
        merged.violations = per_register.violations + snapshots.violations
        return merged


class Cluster:
    """Owns one sharded store end to end; hand out :meth:`session` s.

    Constructor arguments mirror :class:`~repro.service.ShardedKVStore`
    (which the cluster builds and owns); ``record_history=True``
    additionally captures every operation and snapshot for
    :meth:`Admin.check`.  To layer the API over a store you already
    manage (migration path), use :meth:`from_store`.
    """

    def __init__(self, protocol_factory: Callable[[], StorageProtocol],
                 config: SystemConfig, num_shards: int = 2,
                 jitter: float = 0.0, seed: int = 0, vnodes: int = 64,
                 default_timeout: Optional[float] = 30.0,
                 batching: bool = True,
                 max_pending_per_host: Optional[int] = None,
                 record_history: bool = False,
                 data_dir: Optional[str] = None,
                 granularity: str = "group",
                 auto_heal: bool = True,
                 fast_reads: bool = False):
        self.kv = ShardedKVStore(
            protocol_factory, config, num_shards=num_shards,
            jitter=jitter, seed=seed, vnodes=vnodes,
            default_timeout=default_timeout, batching=batching,
            max_pending_per_host=max_pending_per_host,
            record_history=record_history, data_dir=data_dir,
            granularity=granularity, auto_heal=auto_heal,
            fast_reads=fast_reads)
        self._owns_store = True
        self._bind()

    @classmethod
    def from_store(cls, kv: ShardedKVStore) -> "Cluster":
        """Wrap an existing store; its lifecycle stays the caller's."""
        cluster = cls.__new__(cls)
        cluster.kv = kv
        cluster._owns_store = False
        cluster._bind()
        return cluster

    def _bind(self) -> None:
        probe = next(iter(self.kv.shards.values()))
        #: the strongest :class:`Consistency` the protocol provides.
        self.provides = Consistency.of_protocol(probe.protocol)
        self._leases = WriterLeaseAllocator(self.config.num_writers)
        self._reader_rr = itertools.count()
        self._sessions: List[Session] = []
        self._admin: Optional[Admin] = None

    # -- derived views ------------------------------------------------------
    @property
    def config(self) -> SystemConfig:
        return self.kv.config

    @property
    def history(self) -> Optional[History]:
        return self.kv.history

    def known_keys(self) -> List[str]:
        return self.kv.known_keys()

    # -- lifecycle ----------------------------------------------------------
    async def start(self) -> "Cluster":
        if self._owns_store:
            await self.kv.start()
        return self

    async def stop(self) -> None:
        """Close every open session, then stop the store (if owned)."""
        for session in list(self._sessions):
            session.close()
        if self._owns_store:
            await self.kv.stop()

    async def __aenter__(self) -> "Cluster":
        return await self.start()

    async def __aexit__(self, *exc_info: Any) -> None:
        await self.stop()

    # -- sessions -----------------------------------------------------------
    def session(self, consistency: Optional[Consistency] = None,
                retry: Optional[RetryPolicy] = None,
                reader_index: Optional[int] = None) -> Session:
        """Open a session.

        ``consistency`` defaults to :attr:`Consistency.REGULAR`, capped
        at what the protocol provides (a safe-only deployment defaults
        to ``SAFE``); declaring more than the protocol provides raises
        :class:`~repro.errors.ConsistencyError`.  ``retry`` defaults to
        a standard bounded-backoff :class:`RetryPolicy`; pass
        ``RetryPolicy.none()`` to fail fast.  ``reader_index`` is
        assigned round-robin over ``config.num_readers`` unless pinned.
        """
        if consistency is None:
            consistency = min(Consistency.REGULAR, self.provides)
        else:
            consistency = Consistency(consistency)
            consistency.require_at_most(self.provides, "session()")
        if retry is None:
            retry = RetryPolicy()
        if reader_index is None:
            reader_index = next(self._reader_rr) % self.config.num_readers
        elif not 0 <= reader_index < self.config.num_readers:
            raise ConfigurationError(
                f"reader index {reader_index} out of range for "
                f"{self.config.num_readers} reader(s)")
        session = Session(self, consistency=consistency, retry=retry,
                          reader_index=reader_index)
        self._sessions.append(session)
        return session

    def _forget_session(self, session: Session) -> None:
        try:
            self._sessions.remove(session)
        except ValueError:
            pass  # stop() may race a caller's own close()

    @property
    def open_sessions(self) -> int:
        return len(self._sessions)

    # -- control plane ------------------------------------------------------
    def admin(self) -> Admin:
        """The cluster's control plane (reconfiguration, faults, checks)."""
        if self._admin is None:
            self._admin = Admin(self)
        return self._admin

    # -- observability ------------------------------------------------------
    def describe(self) -> str:
        return (f"Cluster({self.kv.describe()}; provides "
                f"{self.provides.name}; {len(self._sessions)} session(s), "
                f"{self._leases!r})")


__all__ = ["Admin", "Cluster"]
