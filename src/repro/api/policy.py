"""Session policies: consistency levels and retry behaviour.

Both are *declarative* knobs a caller sets once per session (or per
call): :class:`Consistency` states which register semantics the caller
relies on, :class:`RetryPolicy` states which transient failures the
session absorbs and how it backs off between attempts.  Neither touches
protocol code -- consistency is validated against what the cluster's
protocol actually emulates, and retries replay operations through the
ordinary service-tier paths.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from ..errors import (BackpressureError, BusyRegisterError, ConsistencyError,
                      FencedWriteError, ReplicaUnavailableError)
from ..protocols import ATOMIC, REGULAR, SAFE, StorageProtocol


class Consistency(enum.IntEnum):
    """Register semantics a session relies on (Lamport's hierarchy).

    Ordered: ``SAFE < REGULAR < ATOMIC``.  A protocol that provides a
    level also provides every weaker one, so a session may always declare
    *less* than the deployment offers -- declaring more raises
    :class:`~repro.errors.ConsistencyError` at session creation.  The
    declaration is the contract the history checkers verify
    (:func:`~repro.spec.checkers.check_regularity` and friends);
    cross-shard snapshots additionally require the protocol to provide at
    least :attr:`REGULAR` (safe reads concurrent with writes may return
    anything, which no multi-key cut can be built on).
    """

    SAFE = 1
    REGULAR = 2
    ATOMIC = 3

    @classmethod
    def of_protocol(cls, protocol: StorageProtocol) -> "Consistency":
        """The level a protocol's advertised ``semantics`` provides."""
        return {SAFE: cls.SAFE, REGULAR: cls.REGULAR,
                ATOMIC: cls.ATOMIC}[protocol.semantics]

    def require_at_most(self, provided: "Consistency",
                        context: str) -> None:
        if self > provided:
            raise ConsistencyError(
                f"{context} requires {self.name} semantics but the "
                f"cluster's protocol provides only {provided.name}")


#: The transient failures a retry policy may absorb, and why each is
#: retryable: a fence clears once the reconfiguration flips routing,
#: backpressure clears as in-flight operations drain, a busy register
#: clears when the competing same-register operation settles, and an
#: unreachable replica clears when its supervisor restarts the process
#: (multiproc deployments) or the network blip passes.
RETRYABLE = (FencedWriteError, BackpressureError, BusyRegisterError,
             ReplicaUnavailableError)


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded retries with exponential backoff for transient failures.

    ``attempts`` is the *total* number of tries (1 = no retries).  The
    sleep before retry ``n`` is ``backoff * multiplier**(n-1)`` capped at
    ``max_backoff``; the first retry after a fence additionally rides the
    event-loop yield inside the sleep, which is what lets an in-flight
    routing flip land.  Per-class switches turn absorption off for any of
    the retryable errors; everything else always propagates
    immediately.  On exhaustion the session raises
    :class:`~repro.errors.RetryExhaustedError` with the final failure
    chained.
    """

    attempts: int = 5
    backoff: float = 0.001
    multiplier: float = 2.0
    max_backoff: float = 0.05
    retry_fenced: bool = True
    retry_backpressure: bool = True
    retry_busy: bool = True
    retry_unavailable: bool = True

    def __post_init__(self) -> None:
        if self.attempts < 1:
            raise ValueError("a retry policy needs at least one attempt")
        if self.backoff < 0 or self.max_backoff < 0:
            raise ValueError("backoff delays are non-negative")
        if self.multiplier < 1.0:
            raise ValueError("the backoff multiplier must be >= 1")

    @classmethod
    def none(cls) -> "RetryPolicy":
        """Fail fast: every error propagates on the first occurrence."""
        return cls(attempts=1)

    def handles(self, error: BaseException) -> bool:
        """Whether this policy absorbs ``error`` (given attempts remain)."""
        if isinstance(error, FencedWriteError):
            return self.retry_fenced
        if isinstance(error, BackpressureError):
            return self.retry_backpressure
        if isinstance(error, BusyRegisterError):
            return self.retry_busy
        if isinstance(error, ReplicaUnavailableError):
            return self.retry_unavailable
        return False

    def delay(self, retry_number: int) -> float:
        """Sleep before the ``retry_number``-th retry (1-based)."""
        return min(self.backoff * self.multiplier ** (retry_number - 1),
                   self.max_backoff)


__all__ = ["Consistency", "RetryPolicy", "RETRYABLE"]
