"""Sessions: the one client handle applications hold.

A :class:`Session` binds together the concerns the raw service tier
leaves to the caller:

* **identity** -- the session leases an exclusive writer index from its
  cluster (and is assigned a reader index), so application code never
  passes ``writer_index``/``reader_index`` again;
* **retries** -- a :class:`~repro.api.policy.RetryPolicy` absorbs
  transient failures: :class:`~repro.errors.FencedWriteError` (the key
  was mid-handoff; routing is re-resolved on retry, so the write lands
  on the key's new shard group after the flip),
  :class:`~repro.errors.BackpressureError` and
  :class:`~repro.errors.BusyRegisterError` (bounded exponential
  backoff);
* **consistency** -- the session declares the register semantics it
  relies on, validated against what the cluster's protocol provides.

The headline capability is :meth:`Session.snapshot`: a cross-shard
multi-key read returning a *consistent cut*.  Each round performs one
tag-returning collect of every key (batched per shard group); the
snapshot returns when two consecutive collects agree on every key's
``(epoch, writer_id)`` tag.  The second collect's reads are invoked only
after the first fully completed, so -- with at least regular per-key
semantics -- any write that one collected value depends on must surface
in the confirming collect, and agreement certifies the cut
(:func:`~repro.spec.checkers.check_snapshot_consistency` checks exactly
this against recorded histories).  Keys whose tags keep moving are
re-read in further rounds, up to a bound; then
:class:`~repro.errors.SnapshotContentionError`.
"""

from __future__ import annotations

import asyncio
from collections.abc import Mapping as MappingABC
from typing import Any, Dict, Iterable, List, Mapping, Optional, Tuple

from ..errors import (PreconditionFailedError, RetryExhaustedError,
                      SnapshotContentionError, TransportError)
from ..types import TAG0, WriterTag, reader
from .policy import Consistency, RETRYABLE, RetryPolicy


class Snapshot(MappingABC):
    """An immutable consistent cut over a set of keys.

    Mapping-like: ``snap[key]`` / ``snap.get(key)`` return the value the
    cut holds for ``key`` (``None`` for a key never written).
    :attr:`tags` gives the version tag certified per key and
    :attr:`rounds` how many collects convergence took.
    """

    __slots__ = ("_values", "tags", "rounds")

    def __init__(self, values: Dict[str, Any],
                 tags: Dict[str, Optional[WriterTag]], rounds: int):
        self._values = dict(values)
        self.tags = dict(tags)
        self.rounds = rounds

    def __getitem__(self, key: str) -> Any:
        return self._values[key]

    def __iter__(self):
        return iter(self._values)

    def __len__(self) -> int:
        return len(self._values)

    def __repr__(self) -> str:
        return (f"Snapshot({len(self._values)} keys, "
                f"{self.rounds} round(s))")


class _SnapshotCall:
    """Lazy snapshot invocation: ``await`` it, or use ``async with``.

    Both forms run the same convergence loop; the context-manager form
    simply scopes the returned cut::

        snap = await session.snapshot(keys)
        async with session.snapshot() as snap:
            ...
    """

    __slots__ = ("_session", "_keys", "_max_rounds", "_timeout")

    def __init__(self, session: "Session",
                 keys: Optional[Iterable[str]],
                 max_rounds: int, timeout: Optional[float]):
        self._session = session
        self._keys = keys
        self._max_rounds = max_rounds
        self._timeout = timeout

    def __await__(self):
        return self._session._take_snapshot(
            self._keys, self._max_rounds, self._timeout).__await__()

    async def __aenter__(self) -> Snapshot:
        return await self

    async def __aexit__(self, *exc_info: Any) -> None:
        return None


class Session:
    """One application's handle on a cluster; create via
    :meth:`~repro.api.cluster.Cluster.session`.

    Sessions are cheap; open one per logical actor.  The writer identity
    is leased lazily on the first write and released by :meth:`close`
    (``async with`` does it for you), so read-only sessions never
    consume one of the cluster's ``num_writers`` identities.
    """

    def __init__(self, cluster: "Cluster", consistency: Consistency,
                 retry: RetryPolicy, reader_index: int):
        self._cluster = cluster
        self.consistency = consistency
        self.retry = retry
        self.reader_index = reader_index
        self._writer_index: Optional[int] = None
        self._closed = False
        #: writes currently in flight under the leased identity; the
        #: lease may only return to the pool once this drains, or another
        #: session could be writing under the same writer id.
        self._writes_in_flight = 0

    # -- identity -----------------------------------------------------------
    @property
    def writer_index(self) -> int:
        """The session's exclusive writer identity (leased on first use)."""
        self._check_open()
        if self._writer_index is None:
            self._writer_index = self._cluster._leases.acquire(self)
        return self._writer_index

    @property
    def writes_leased(self) -> bool:
        return self._writer_index is not None

    # -- lifecycle ----------------------------------------------------------
    def close(self) -> None:
        """Refuse further operations and release the writer lease.

        If a write is still in flight under the leased identity, the
        release is deferred until it settles (success, failure or
        eviction): handing the index to another session while this one
        is mid-write would put two live clients behind one writer id,
        which is exactly what the lease pool exists to prevent.
        """
        if self._closed:
            return
        self._closed = True
        self._release_if_drained()
        self._cluster._forget_session(self)

    def _release_if_drained(self) -> None:
        if (self._closed and self._writes_in_flight == 0
                and self._writer_index is not None):
            self._cluster._leases.release(self._writer_index)
            self._writer_index = None

    @property
    def closed(self) -> bool:
        return self._closed

    async def __aenter__(self) -> "Session":
        return self

    async def __aexit__(self, *exc_info: Any) -> None:
        self.close()

    def _check_open(self) -> None:
        if self._closed:
            raise TransportError("session is closed")

    # -- retry machinery -----------------------------------------------------
    async def _retrying(self, thunk, what: str) -> Any:
        policy = self.retry
        failures = 0
        while True:
            try:
                return await thunk()
            except RETRYABLE as error:
                if not policy.handles(error):
                    raise
                failures += 1
                if failures >= policy.attempts:
                    if policy.attempts == 1:
                        raise  # fail-fast policy: no retry happened,
                        # so the raw error is the whole story
                    raise RetryExhaustedError(
                        f"{what} failed {failures} time(s), retry policy "
                        f"exhausted; last error: {error}",
                        attempts=failures, last_error=error) from error
                # The sleep both backs off and yields the event loop, so
                # whatever the retry is waiting on (a routing flip, a
                # draining host, a competing operation) can make progress.
                await asyncio.sleep(policy.delay(failures))

    def _resolve(self, consistency: Optional[Consistency],
                 context: str) -> Consistency:
        if consistency is None:
            return self.consistency
        consistency = Consistency(consistency)
        consistency.require_at_most(self._cluster.provides, context)
        return consistency

    # -- KV operations -------------------------------------------------------
    async def put(self, key: str, value: Any,
                  timeout: Optional[float] = None) -> None:
        """Write one key under the session's leased writer identity."""
        self._check_open()
        kv = self._cluster.kv
        writer_index = self.writer_index
        self._writes_in_flight += 1
        try:
            await self._retrying(
                lambda: kv.put(key, value, timeout=timeout,
                               writer_index=writer_index),
                f"put({key!r})")
        finally:
            self._writes_in_flight -= 1
            self._release_if_drained()

    async def put_if(self, key: str, value: Any,
                     expected_tag: Optional[WriterTag],
                     timeout: Optional[float] = None
                     ) -> Optional[WriterTag]:
        """Conditional write: PUT only if the key's tag still matches.

        ``expected_tag`` is the ``(epoch, writer_id)`` tag a previous
        :meth:`get_tagged` (or :meth:`put_if`) reported; ``None`` means
        "I expect the key has never been written".  The observed tag is
        compared first and a mismatch raises
        :class:`~repro.errors.PreconditionFailedError` *without*
        writing; on a match the write proceeds and the tag it installed
        is returned (feed it to the next :meth:`put_if` for chained
        updates).

        The check is optimistic, not a wire-level CAS: read, compare,
        write are separate quorum rounds, so a concurrent writer can
        still land between the compare and the write (last-tag-wins as
        always).  What the method guarantees is that a *stale* caller
        -- one whose expectation is already outdated at compare time --
        fails fast instead of silently clobbering the newer value,
        which is the contract optimistic concurrency needs.
        """
        self._check_open()
        kv = self._cluster.kv
        writer_index = self.writer_index
        self._writes_in_flight += 1
        try:
            async def attempt() -> Optional[WriterTag]:
                _, observed = await kv.get_tagged(
                    key, reader_index=self.reader_index, timeout=timeout)
                expected = (TAG0 if expected_tag is None else expected_tag)
                found = TAG0 if observed is None else observed
                if found != expected:
                    # The caller's picture of the key is stale; so is any
                    # read lease minted from it.  Drop the lease so the
                    # caller's recovery read goes through classic rounds
                    # and re-arms on fresh evidence.
                    invalidate = getattr(kv, "invalidate_leases", None)
                    if invalidate is not None:
                        invalidate([key])
                    raise PreconditionFailedError(
                        f"put_if({key!r}) expected tag "
                        f"{None if expected == TAG0 else expected} but "
                        f"observed {None if found == TAG0 else found}",
                        expected=(None if expected == TAG0 else expected),
                        observed=(None if found == TAG0 else found))
                return await kv.put_tagged(key, value, timeout=timeout,
                                           writer_index=writer_index)
            return await self._retrying(attempt, f"put_if({key!r})")
        finally:
            self._writes_in_flight -= 1
            self._release_if_drained()

    async def get(self, key: str,
                  consistency: Optional[Consistency] = None,
                  timeout: Optional[float] = None) -> Optional[Any]:
        """Read one key (``None`` if never written).

        The read takes the strongest path admissible at the declared
        consistency: when the cluster runs with fast reads enabled, a
        held tag lease is probed first (one round) and the classic
        quorum rounds are the transparent fallback -- lease grants are
        taken only from evidence meeting the protocol's own semantics
        (completed classic reads, quorum-acked writes, certified
        snapshot cuts), so the fast path never weakens the consistency
        this session declared.
        """
        self._check_open()
        self._resolve(consistency, f"get({key!r})")
        kv = self._cluster.kv
        return await self._retrying(
            lambda: kv.get(key, reader_index=self.reader_index,
                           timeout=timeout),
            f"get({key!r})")

    async def get_tagged(self, key: str,
                         consistency: Optional[Consistency] = None,
                         timeout: Optional[float] = None
                         ) -> Tuple[Optional[Any], Optional[WriterTag]]:
        """Read one key together with the version tag observed."""
        self._check_open()
        self._resolve(consistency, f"get_tagged({key!r})")
        kv = self._cluster.kv
        return await self._retrying(
            lambda: kv.get_tagged(key, reader_index=self.reader_index,
                                  timeout=timeout),
            f"get_tagged({key!r})")

    async def put_many(self, items: Mapping[str, Any],
                       timeout: Optional[float] = None) -> None:
        """Batch-write; rounds coalesce per shard group as usual."""
        self._check_open()
        kv = self._cluster.kv
        writer_index = self.writer_index
        self._writes_in_flight += 1
        try:
            await self._retrying(
                lambda: kv.put_many(items, timeout=timeout,
                                    writer_index=writer_index),
                f"put_many({len(items)} keys)")
        finally:
            self._writes_in_flight -= 1
            self._release_if_drained()

    async def get_many(self, keys: Iterable[str],
                       consistency: Optional[Consistency] = None,
                       timeout: Optional[float] = None
                       ) -> Dict[str, Optional[Any]]:
        """Batch-read in caller order.

        Per-key semantics only -- for a *mutually* consistent multi-key
        result use :meth:`snapshot`.
        """
        self._check_open()
        self._resolve(consistency, "get_many()")
        keys = list(keys)
        kv = self._cluster.kv
        return await self._retrying(
            lambda: kv.get_many(keys, reader_index=self.reader_index,
                                timeout=timeout),
            f"get_many({len(keys)} keys)")

    # -- snapshots -----------------------------------------------------------
    def snapshot(self, keys: Optional[Iterable[str]] = None,
                 max_rounds: int = 8,
                 timeout: Optional[float] = None) -> _SnapshotCall:
        """A consistent multi-key read across shard groups.

        ``keys`` defaults to every key the cluster knows.  Returns an
        awaitable that is also an async context manager; the result is a
        :class:`Snapshot`.  Raises
        :class:`~repro.errors.SnapshotContentionError` if the cut cannot
        be certified within ``max_rounds`` collects.
        """
        if max_rounds < 2:
            raise ValueError("a snapshot needs at least two collects "
                             "(one to propose a cut, one to certify it)")
        return _SnapshotCall(self, keys, max_rounds, timeout)

    # Each collect is one ``get_many_tagged`` sweep, which rides the
    # vector round engine underneath: a whole collect costs one frame
    # per (replica, step) per shard group, whatever the key count.
    # Collects must span the *full* key list every round -- certifying
    # per-key stability across different round pairs would not be a cut.

    async def _take_snapshot(self, keys: Optional[Iterable[str]],
                             max_rounds: int,
                             timeout: Optional[float]) -> Snapshot:
        self._check_open()
        cluster = self._cluster
        # The convergence argument needs per-key reads that are at least
        # regular; a safe protocol's concurrent reads may return anything.
        Consistency.REGULAR.require_at_most(cluster.provides, "snapshot()")
        kv = cluster.kv
        key_list = (list(dict.fromkeys(keys)) if keys is not None
                    else kv.known_keys())
        history = kv.history
        begin = history.mark() if history is not None else 0
        previous: Optional[Dict[str, Tuple[Any, Optional[WriterTag]]]] = None
        collect: Dict[str, Tuple[Any, Optional[WriterTag]]] = {}
        moved: List[str] = []
        for round_number in range(1, max_rounds + 1):
            if not key_list:
                break  # the empty cut is trivially consistent
            collect = await self._retrying(
                lambda: kv.get_many_tagged(
                    key_list, reader_index=self.reader_index,
                    timeout=timeout),
                f"snapshot collect ({len(key_list)} keys)")
            if previous is not None:
                moved = [key for key in key_list
                         if collect[key][1] != previous[key][1]]
                if not moved:
                    break
            previous = collect
        else:
            raise SnapshotContentionError(
                f"snapshot of {len(key_list)} key(s) did not converge in "
                f"{max_rounds} collects; still moving: {sorted(moved)}",
                rounds=max_rounds, unstable_keys=sorted(moved))
        values = {key: value for key, (value, _) in collect.items()}
        tags = {key: tag for key, (_, tag) in collect.items()}
        rounds = round_number if key_list else 0
        # The confirming collect certified every (tag, value) pair with a
        # completed read, which is lease-grade evidence: seed the reader
        # caches so follow-up gets on snapshotted keys can go fast.
        grant = getattr(kv, "grant_read_leases", None)
        if grant is not None and key_list:
            grant({key: (tags[key], values[key])
                   for key in key_list if tags[key] is not None})
        if history is not None:
            history.record_snapshot(begin, tags, values,
                                    client=reader(self.reader_index))
        return Snapshot(values, tags, rounds)

    # -- observability -------------------------------------------------------
    def describe(self) -> str:
        lease = (f"writer {self._writer_index}"
                 if self._writer_index is not None else "no writer lease")
        return (f"Session({self.consistency.name}, reader "
                f"{self.reader_index}, {lease}, "
                f"retry x{self.retry.attempts})")


__all__ = ["Session", "Snapshot"]
