"""The reader-side predicates of Figure 4 (definitions block, lines 1-5).

These are kept in their own module because they carry the entire
intellectual weight of the protocol:

* :func:`conflicts` -- the *conflict* relation between responders: object
  ``k`` is in conflict with object ``i`` when ``k`` exhibited a candidate
  tuple whose ``tsrarray`` claims ``i`` reported a reader timestamp from
  the future.  At least one of the two is malicious (Lemma 1).
* :func:`exists_conflict_free_quorum` -- the round-1 termination condition
  (line 11): some ``>= S - t`` subset of responders is pairwise
  conflict-free.
* :class:`CandidateTracker` -- the sets ``C``, ``RW``, ``RPW``,
  ``FirstRW`` and the derived predicates ``safe(c)``, ``highCand(c)``
  and the elimination rule ``|RespondedWO(c)| >= t + b + 1``.

The subset search in :func:`exists_conflict_free_quorum` is exact: vertices
untouched by any conflict are always eligible, and a bounded
branch-and-bound computes the maximum independent set among the (few)
conflicted vertices.  Conflicts only exist when Byzantine objects actively
accuse, so the conflicted subgraph has at most a handful of vertices in any
legal run.
"""

from __future__ import annotations

from typing import (Callable, Dict, FrozenSet, Iterable, List, Optional,
                    Set, Tuple, Union)

from ...types import TimestampValue, WriteTuple


# ---------------------------------------------------------------------------
# Conflict relation and round-1 termination (lines 1, 5, 11)
# ---------------------------------------------------------------------------


def conflict_pairs(candidates: Iterable[WriteTuple],
                   first_rw: Union[Dict[WriteTuple, Set[int]],
                                   Callable[[], Dict[WriteTuple,
                                                     Set[int]]]],
                   reader_index: int,
                   tsr_first_round: int) -> Set[Tuple[int, int]]:
    """All pairs ``(i, k)`` with ``conflict(i, k)`` true (line 1).

    ``conflict(i, k) ::= ∃c ∈ C : k ∈ FirstRW(c) ∧
    c.tsrarray[i][j] > tsrFR``.  The pair is *directed* in the definition
    (``k`` accuses ``i``), but the round-1 condition quantifies over both
    orders, so callers treat the relation symmetrically.

    ``first_rw`` may be passed as a zero-argument callable: accusations
    only exist when a Byzantine object forged a future reader timestamp,
    so in the overwhelmingly common conflict-free case the exhibitor map
    is never materialized at all.
    """
    pairs: Set[Tuple[int, int]] = set()
    first_rw_map: Optional[Dict[WriteTuple, Set[int]]] = \
        None if callable(first_rw) else first_rw
    for c in candidates:
        accused = [i for i, row in enumerate(c.tsrarray)
                   if row[reader_index] is not None
                   and row[reader_index] > tsr_first_round]
        if not accused:
            continue
        if first_rw_map is None:
            first_rw_map = first_rw()
        accusers = first_rw_map.get(c)
        if not accusers:
            continue
        for i in accused:
            for k in accusers:
                pairs.add((i, k))
    return pairs


def _max_independent_set_size(vertices: List[int],
                              adjacency: Dict[int, Set[int]],
                              needed: int) -> int:
    """Size of a maximum independent set, early-exiting at ``needed``.

    Classic branching on a highest-degree vertex; the conflicted subgraph
    is tiny (each edge implicates a Byzantine object) so this is cheap.
    """
    if needed <= 0:
        return 0
    best = 0
    vertices = sorted(vertices, key=lambda v: -len(adjacency[v]))

    def branch(remaining: FrozenSet[int], size: int) -> None:
        nonlocal best
        if size + len(remaining) <= best:
            return
        if not remaining:
            best = max(best, size)
            return
        if best >= needed:
            return
        # Pick the remaining vertex with most remaining neighbours.
        pivot = max(remaining,
                    key=lambda v: len(adjacency[v] & remaining))
        neighbours = adjacency[pivot] & remaining
        if not neighbours:
            branch(remaining - {pivot}, size + 1)
            return
        # Either include pivot (dropping its neighbours) or exclude it.
        branch(remaining - neighbours - {pivot}, size + 1)
        branch(remaining - {pivot}, size)

    branch(frozenset(vertices), 0)
    return best


def exists_conflict_free_quorum(responders: Set[int],
                                pairs: Set[Tuple[int, int]],
                                quorum: int) -> bool:
    """Line 11: is there ``Resp1OK ⊆ Resp1`` of size ``>= S - t`` with no
    internal conflict?

    Self-accusations ``(i, i)`` disqualify the vertex outright.  Conflict
    pairs touching objects outside ``responders`` impose nothing here --
    the subset is drawn from responders only.
    """
    if len(responders) < quorum:
        return False
    if not pairs:
        # No Byzantine accusations in flight -- the overwhelmingly common
        # case; every responder subset is conflict-free.
        return True
    disqualified = {i for (i, k) in pairs if i == k and i in responders}
    live = responders - disqualified
    adjacency: Dict[int, Set[int]] = {v: set() for v in live}
    conflicted: Set[int] = set()
    for i, k in pairs:
        if i == k:
            continue
        if i in live and k in live:
            adjacency[i].add(k)
            adjacency[k].add(i)
            conflicted.add(i)
            conflicted.add(k)
    free = len(live) - len(conflicted)
    if free >= quorum:
        return True
    needed = quorum - free
    mis = _max_independent_set_size(sorted(conflicted), adjacency, needed)
    return free + mis >= quorum


# ---------------------------------------------------------------------------
# Candidate tracking (lines 2-4, 21-28)
# ---------------------------------------------------------------------------


class CandidateTracker:
    """The reader's evidence sets and the predicates over them.

    All updates are monotone (sets only grow), which makes the two
    termination conditions monotone in time exactly as the wait-freedom
    proof requires: once ``safe(c)`` holds it keeps holding, and once a
    candidate is eliminated it stays eliminated (``RespondedWO`` never
    shrinks).

    Write ordering compares full ``(epoch, writer_id)`` tags, so one
    tracker serves the single-writer protocol (all tags ``(ts, 0)``) and
    its MWMR extension alike.

    The derived predicates are evaluated after every ack and several
    times within one step, but their verdicts only change when evidence
    arrives; a generation counter bumped on ingestion keys cheap
    memoization of the hot set computations (the same shape as
    :class:`~repro.core.regular.evidence.RegularEvidence`).
    """

    def __init__(self, elimination_threshold: int,
                 confirmation_threshold: int):
        self.elimination_threshold = elimination_threshold
        self.confirmation_threshold = confirmation_threshold
        #: every tuple ever added to C (line 24); elimination is dynamic
        self._candidates: Set[WriteTuple] = set()
        #: RW(c): objects that reported tuple c in their w field, any round
        self.rw: Dict[WriteTuple, Set[int]] = {}
        #: RPW(tsval): objects that reported tsval in their pw field
        self.rpw: Dict[TimestampValue, Set[int]] = {}
        #: FirstRW(c): objects that reported c in the FIRST round
        self.first_rw: Dict[WriteTuple, Set[int]] = {}
        #: Resp1 (via RespFirst[]): objects that answered round 1
        self.responded_first: Set[int] = set()
        # Memoization state: bumped whenever evidence is ingested.
        self._generation = 0
        self._voter_cache: Dict[Tuple[str, WriteTuple],
                                Tuple[int, Set[int]]] = {}
        self._candidates_cache: Tuple[int, Optional[Set[WriteTuple]]] = \
            (-1, None)

    # -- evidence ingestion -------------------------------------------------
    def record_first_round(self, object_index: int, pw: TimestampValue,
                           w: WriteTuple) -> None:
        """Lines 21-24: READ1_ACK processing."""
        self.first_rw.setdefault(w, set()).add(object_index)
        self.rw.setdefault(w, set()).add(object_index)
        self.rpw.setdefault(pw, set()).add(object_index)
        self._candidates.add(w)
        self.responded_first.add(object_index)
        self._generation += 1

    def record_second_round(self, object_index: int, pw: TimestampValue,
                            w: WriteTuple) -> None:
        """Lines 25-26: READ2_ACK processing (no candidate insertion)."""
        self.rw.setdefault(w, set()).add(object_index)
        self.rpw.setdefault(pw, set()).add(object_index)
        self._generation += 1

    # -- derived sets ---------------------------------------------------------
    def responded_without(self, c: WriteTuple) -> Set[int]:
        """``RespondedWO(c) = {i : ∃c' != c, i ∈ RW(c')}`` (line 2)."""
        cached = self._voter_cache.get(("wo", c))
        if cached is not None and cached[0] == self._generation:
            return cached[1]
        out: Set[int] = set()
        for other, members in self.rw.items():
            if other != c:
                out |= members
        self._voter_cache[("wo", c)] = (self._generation, out)
        return out

    def is_eliminated(self, c: WriteTuple) -> bool:
        """Lines 27-28: ``|RespondedWO(c)| >= t + b + 1`` removes ``c``."""
        return len(self.responded_without(c)) >= self.elimination_threshold

    def candidates(self) -> Set[WriteTuple]:
        """The current set ``C``: added candidates not (yet) eliminated."""
        generation, cached = self._candidates_cache
        if generation == self._generation and cached is not None:
            return cached
        current = {c for c in self._candidates if not self.is_eliminated(c)}
        self._candidates_cache = (self._generation, current)
        return current

    def candidates_empty(self) -> bool:
        return not self.candidates()

    # -- predicates -------------------------------------------------------------
    def supporters(self, c: WriteTuple) -> Set[int]:
        """Objects counted by ``safe(c)`` (line 3).

        An object supports ``c`` when it reported ``c`` itself, ``c``'s
        timestamp-value pair, or *any* tuple / pair with a strictly higher
        write tag.
        """
        cached = self._voter_cache.get(("safe", c))
        if cached is not None and cached[0] == self._generation:
            return cached[1]
        support: Set[int] = set()
        support |= self.rw.get(c, set())
        support |= self.rpw.get(c.tsval, set())
        c_tag = c.tsval.tag
        for other, members in self.rw.items():
            if other.tsval.tag > c_tag:
                support |= members
        for pair, members in self.rpw.items():
            if pair.tag > c_tag:
                support |= members
        self._voter_cache[("safe", c)] = (self._generation, support)
        return support

    def is_safe(self, c: WriteTuple) -> bool:
        return len(self.supporters(c)) >= self.confirmation_threshold

    def high_candidates(self) -> Set[WriteTuple]:
        """``highCand(c)`` holders: candidates with the maximal tag."""
        current = self.candidates()
        if not current:
            return set()
        top = max(c.tsval.tag for c in current)
        return {c for c in current if c.tsval.tag == top}

    def returnable(self) -> Optional[WriteTuple]:
        """Line 14/18: a candidate that is both safe and highCand, if any."""
        for c in self.high_candidates():
            if self.is_safe(c):
                return c
        return None
