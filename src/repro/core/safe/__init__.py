"""The paper's safe storage (Section 4, Figures 2-4).

An optimally resilient (``S = 2t + b + 1``) SWMR *safe* register emulation
in which every READ and every WRITE completes in at most two communication
round-trips -- the matching upper bound for Proposition 1 and the
counterexample to the ``b + 1``-round conjecture of [1].
"""

from typing import Any, List

from ...config import SystemConfig
from ...protocols import SAFE, StorageProtocol
from .object import SafeObject
from .predicates import (CandidateTracker, conflict_pairs,
                         exists_conflict_free_quorum)
from .reader import SafeReaderState, SafeReadOperation
from .writer import SafeWriterState, SafeWriteOperation


class SafeStorageProtocol(StorageProtocol):
    """Plug-in wrapper for the Figure 2/3/4 protocol."""

    name = "gv-safe"
    semantics = SAFE
    write_rounds_worst_case = 2
    read_rounds_worst_case = 2
    requires_authentication = False
    readers_write = True

    def min_objects(self, t: int, b: int) -> int:
        return 2 * t + b + 1

    def make_objects(self, config: SystemConfig) -> List[SafeObject]:
        self.validate_config(config)
        return [SafeObject(i, config) for i in range(config.num_objects)]

    def make_writer_state(self, config: SystemConfig) -> SafeWriterState:
        return SafeWriterState(config)

    def make_reader_state(self, config: SystemConfig,
                          reader_index: int) -> SafeReaderState:
        return SafeReaderState(config, reader_index)

    def make_write(self, writer_state: SafeWriterState,
                   value: Any) -> SafeWriteOperation:
        return SafeWriteOperation(writer_state, value)

    def make_read(self, reader_state: SafeReaderState) -> SafeReadOperation:
        return SafeReadOperation(reader_state)


__all__ = [
    "SafeStorageProtocol",
    "SafeObject",
    "SafeWriterState",
    "SafeWriteOperation",
    "SafeReaderState",
    "SafeReadOperation",
    "CandidateTracker",
    "conflict_pairs",
    "exists_conflict_free_quorum",
]
