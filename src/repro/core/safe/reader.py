"""Reader side of the safe storage (Figure 4).

The READ takes exactly two rounds, and -- unusually -- *writes control
data* in both: each ``READk`` message carries a fresh reader timestamp that
the objects store in their ``tsr[j]`` field.  The writer's PW round picks
those timestamps up and embeds them (as ``tsrarray``) into the write tuple,
which closes the loop that lets the reader catch malicious objects:

* In round 1 the reader waits for a *conflict-free* quorum (line 11): if a
  responder exhibits a candidate tuple claiming some object saw a reader
  timestamp that this reader has not issued yet, one of the two objects is
  provably lying and the pair is excluded together.
* In round 2 the reader waits until some candidate with the highest
  timestamp is ``safe`` -- vouched for by ``b + 1`` objects, so at least
  one non-Byzantine voice -- or until every candidate has been eliminated
  (``t + b + 1`` objects answered without it), which can only happen when
  the READ is concurrent with a WRITE, in which case returning the initial
  value ``v0 = ⊥`` is allowed by safety.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Optional

from ...automata.base import ClientOperation, Outgoing, Sink
from ...config import SystemConfig
from ...errors import ProtocolError
from ...messages import ReadAck, ReadRequest
from ...quorums import confirmation_threshold, elimination_threshold
from ...types import BOTTOM, TAG0, ProcessId, obj, reader
from .predicates import (CandidateTracker, conflict_pairs,
                         exists_conflict_free_quorum)


@dataclass
class SafeReaderState:
    """Persistent per-reader variables: ``tsr'_j`` (Figure 4, line 6)."""

    config: SystemConfig
    reader_index: int = 0
    tsr: int = 0

    def __post_init__(self) -> None:
        if not 0 <= self.reader_index < self.config.num_readers:
            raise ProtocolError(
                f"reader index {self.reader_index} out of range for "
                f"R={self.config.num_readers}")


class SafeReadOperation(ClientOperation):
    """One ``READ()`` invocation (Figure 4, lines 7-28)."""

    kind = "READ"

    def __init__(self, state: SafeReaderState):
        super().__init__(reader(state.reader_index))
        self.state = state
        self.config = state.config
        self.reader_index = state.reader_index
        self.tracker = CandidateTracker(
            elimination_threshold=elimination_threshold(self.config),
            confirmation_threshold=confirmation_threshold(self.config),
        )
        self.phase = 1
        self.tsr_first_round: int = 0

    # ------------------------------------------------------------------
    def start(self) -> Outgoing:
        # Line 9: tsrFR := tsr'_j := tsr'_j + 1.
        self.state.tsr += 1
        self.tsr_first_round = self.state.tsr
        self.begin_round()
        # Line 10: READ1<tsr'_j> to all objects.
        request = ReadRequest(round_index=1, tsr=self.tsr_first_round,
                              reader_index=self.reader_index,
                              register_id=self.register_id)
        return [(obj(i), request) for i in range(self.config.num_objects)]

    # -- vector rounds (native) ------------------------------------------
    def start_vector(self, sink: Sink, leftovers: Outgoing) -> None:
        # Line 9: tsrFR := tsr'_j := tsr'_j + 1.
        self.state.tsr += 1
        self.tsr_first_round = self.state.tsr
        self.begin_round()
        sink.append(ReadRequest(round_index=1, tsr=self.tsr_first_round,
                                reader_index=self.reader_index,
                                register_id=self.register_id))

    def absorb(self, sender: ProcessId, message: Any) -> None:
        """Record one ack; the line-11/14 predicates run in advance().

        Anything failing the "upon" pattern match -- stale replies from
        previous READs, early/forged round tags -- is dropped here.
        """
        if (self.done or not sender.is_object
                or not isinstance(message, ReadAck)
                or message.register_id != self.register_id):
            return
        if (self.phase == 1 and message.round_index == 1
                and message.tsr == self.tsr_first_round):
            # Lines 21-24 -- the ack matches the pattern <tsr'_j, pw', w'>.
            self.tracker.record_first_round(sender.index, message.pw,
                                            message.w)
        elif (self.phase == 2 and message.round_index == 2
                and message.tsr == self.tsr_first_round + 1):
            # Lines 25-26.
            self.tracker.record_second_round(sender.index, message.pw,
                                             message.w)

    def advance(self, sink: Sink, leftovers: Outgoing) -> None:
        """Evaluate round conditions once per burst (sound: a
        conflict-free quorum among some responders remains one among
        more, conflicts being pairwise)."""
        if self.done:
            return
        if self.phase == 1:
            if self._round1_condition():
                sink.append(self._enter_round2())
                # The line-14 wait condition may already hold on round-1
                # evidence alone (uncontended runs).
                self._maybe_return()
            return
        self._maybe_return()

    # ------------------------------------------------------------------
    def on_message(self, sender: ProcessId, message: Any) -> Outgoing:
        if self.done or not sender.is_object:
            return []
        self.absorb(sender, message)
        sink: Sink = []
        outgoing: Outgoing = []
        self.advance(sink, outgoing)
        for broadcast in sink:
            outgoing.extend((obj(i), broadcast)
                            for i in range(self.config.num_objects))
        return outgoing

    # ------------------------------------------------------------------
    def _round1_condition(self) -> bool:
        """Line 11: a conflict-free subset of >= S - t responders exists."""
        # Below quorum responders the condition is trivially false.
        if len(self.tracker.responded_first) < self.config.quorum_size:
            return False
        pairs = conflict_pairs(
            candidates=self.tracker.candidates(),
            first_rw=self.tracker.first_rw,
            reader_index=self.reader_index,
            tsr_first_round=self.tsr_first_round,
        )
        return exists_conflict_free_quorum(
            responders=self.tracker.responded_first,
            pairs=pairs,
            quorum=self.config.quorum_size,
        )

    def _enter_round2(self) -> ReadRequest:
        # Lines 12-13: inc(tsr'_j); READ2<tsr'_j> to all objects.
        self.phase = 2
        self.state.tsr += 1
        if self.state.tsr != self.tsr_first_round + 1:
            raise ProtocolError(
                "reader timestamp advanced outside this operation; "
                "concurrent READs by one reader violate well-formedness")
        self.begin_round()
        return ReadRequest(round_index=2, tsr=self.state.tsr,
                           reader_index=self.reader_index,
                           register_id=self.register_id)

    def _maybe_return(self) -> None:
        """Lines 14-20: return when a safe high candidate exists or C = ∅."""
        if self.done:
            return
        candidate = self.tracker.returnable()
        if candidate is not None:
            self.tag = candidate.tag
            self.complete(candidate.tsval.value)
            return
        if self.tracker.candidates_empty():
            # Only possible under read/write concurrency; safety then
            # allows any value -- the paper returns v0.
            self.tag = TAG0
            self.complete(BOTTOM)

    # ------------------------------------------------------------------
    def describe(self) -> str:
        return (f"READ#{self.operation_id} by r{self.reader_index + 1} "
                f"(tsrFR={self.tsr_first_round})")
