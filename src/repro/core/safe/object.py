"""Base-object automaton of the safe storage (Figure 3).

Each object ``s_i`` maintains, *per register*, three fields:

* ``pw`` -- the timestamp-value pair of the latest (pre-)write round seen;
* ``w``  -- the latest complete write tuple ``<tsval, tsrarray>``;
* ``tsr[j]`` -- the highest timestamp received from reader ``r_j``.

Handlers follow the figure line by line, including the guards: a PW message
updates state only for *strictly* newer write tags (line 4), a W message
also for equal ones (line 9 -- the W of write ``k`` must land after the PW
of write ``k``), and READ requests update ``tsr[j]`` only when the reader's
timestamp moved forward (line 14).  "Newer" compares the full ``(epoch,
writer_id)`` tag, which degenerates to the paper's integer comparison in
single-writer systems (every tag is ``(ts, 0)``).

Acknowledgment discipline depends on the writer model.  With the paper's
single writer, stale or replayed write traffic earns no reply at all,
exactly as in the figure -- the sole writer's own rounds are always fresh.
With multiple writers a stale-tagged round is *normal* (the concurrent
writer that lost the epoch race), so the object acknowledges without
adopting; refusing would starve the losing writer forever.  Tag queries
(the MWMR read-timestamp phase) are always answered.

One automaton serves arbitrarily many logical registers: protocol state
lives in per-register slots keyed by the messages' ``register_id``
(the paper's single register is the ``DEFAULT_REGISTER`` slot), so a fixed
replica set multiplexes a whole keyspace without extra processes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, List, Optional, Tuple

from ...automata.base import MultiRegisterObject, Outgoing, Sink
from ...config import SystemConfig
from ...messages import (Batch, EpochFence, Message, Pw, PwAck, ReadAck,
                         ReadRequest, TagQuery, TagQueryAck, W, WriteAck)
from ...types import (DEFAULT_REGISTER, INITIAL_TSVAL, ProcessId,
                      TimestampValue, WriterTag, WriteTuple,
                      initial_write_tuple)


@dataclass
class SafeSlot:
    """Per-register state of one safe object (Figure 3, lines 1-2).

    ``(ts, wid)`` is the tag of the newest write round accepted; ``wid``
    is always 0 in single-writer systems.
    """

    ts: int
    pw: TimestampValue
    w: WriteTuple
    tsr: List[int]
    wid: int = 0

    @property
    def tag(self) -> WriterTag:
        return WriterTag(self.ts, self.wid)


class SafeObject(MultiRegisterObject):
    """Figure 3: ``code of object s_i`` for the safe storage."""

    def __init__(self, object_index: int, config: SystemConfig):
        super().__init__(object_index)
        self.config = config

    def _new_slot(self) -> SafeSlot:
        # Initialization block (lines 1-2), per register.
        return SafeSlot(
            ts=0,
            pw=INITIAL_TSVAL,
            w=initial_write_tuple(self.config.num_objects,
                                  self.config.num_readers),
            tsr=[0] * self.config.num_readers,
        )

    # -- single-register compatibility views ----------------------------
    @property
    def ts(self) -> int:
        return self._slot(DEFAULT_REGISTER).ts

    @property
    def pw(self) -> TimestampValue:
        return self._slot(DEFAULT_REGISTER).pw

    @property
    def w(self) -> WriteTuple:
        return self._slot(DEFAULT_REGISTER).w

    @property
    def tsr(self) -> List[int]:
        return self._slot(DEFAULT_REGISTER).tsr

    # ------------------------------------------------------------------
    def on_message(self, sender: ProcessId, message: Any) -> Outgoing:
        if isinstance(message, Pw):
            reply = self._pw_reply(message)
        elif isinstance(message, W):
            reply = self._w_reply(message)
        elif isinstance(message, ReadRequest):
            reply = self._read_reply(message)
        elif isinstance(message, TagQuery):
            reply = self._tag_reply(message)
        elif isinstance(message, EpochFence):
            return self._on_epoch_fence(sender, message)
        else:
            # Unknown traffic (e.g. probes from baselines wired
            # incorrectly) is ignored rather than crashing the object: a
            # storage element must never be taken down by a malformed
            # client message.
            return []
        return [] if reply is None else [(sender, reply)]

    def handle_batch(self, sender: ProcessId, parts: Tuple[Any, ...],
                     sink: Sink) -> Outgoing:
        """Vector fast path: per-register dispatch in a tight loop, all
        replies coalesced into one ack frame back to ``sender``."""
        leftovers: Outgoing = []
        append = sink.append
        for message in parts:
            kind = message.__class__
            if kind is Pw:
                reply = self._pw_reply(message)
            elif kind is W:
                reply = self._w_reply(message)
            elif kind is ReadRequest:
                reply = self._read_reply(message)
            elif kind is TagQuery:
                reply = self._tag_reply(message)
            else:  # rare control traffic and subclass extensions
                for receiver, payload in self.on_message(sender, message) \
                        or []:
                    if receiver == sender and isinstance(payload, Message) \
                            and not isinstance(payload, Batch):
                        append(payload)
                    else:
                        leftovers.append((receiver, payload))
                continue
            if reply is not None:
                append(reply)
        return leftovers

    # -- MWMR tag discovery ----------------------------------------------
    def _tag_reply(self, message: TagQuery) -> TagQueryAck:
        slot = self._slot(message.register_id)
        top = max(slot.tag, slot.pw.tag, slot.w.tag)
        return TagQueryAck(nonce=message.nonce,
                           object_index=self.object_index,
                           epoch=top.epoch, wid=top.writer_id,
                           register_id=message.register_id)

    # -- lines 3-7 -------------------------------------------------------
    def _pw_reply(self, message: Pw) -> Optional[Message]:
        # Fence state short-circuit: both containers are empty unless a
        # reconfiguration ever touched this replica.
        if ((self.fences or self.hard_fences)
                and self._fence_rejects(message.register_id, message.ts)):
            return self._fence_nack_msg(message.register_id,
                                        message.ts, message.wid)
        slot = self.slots.get(message.register_id)
        if slot is None:
            slot = self.slots[message.register_id] = self._new_slot()
        # Tag comparison inlined (epoch first, writer id tie-break): this
        # guard runs per message and tuple construction is measurable.
        if message.ts > slot.ts or (message.ts == slot.ts
                                    and message.wid > slot.wid):
            slot.ts = message.ts
            slot.wid = message.wid
            slot.pw = message.pw
            # The piggybacked previous tuple may lag what another writer
            # already completed here; never regress the w field.
            if message.w.tag > slot.w.tag:
                slot.w = message.w
        elif not self.config.is_multi_writer:
            return None  # figure semantics: stale traffic earns no reply
        return PwAck(ts=message.ts, object_index=self.object_index,
                     tsr=tuple(slot.tsr),
                     register_id=message.register_id, wid=message.wid)

    # -- lines 8-12 ------------------------------------------------------
    def _w_reply(self, message: W) -> Optional[Message]:
        if ((self.fences or self.hard_fences)
                and self._fence_rejects(message.register_id, message.ts)):
            return self._fence_nack_msg(message.register_id,
                                        message.ts, message.wid)
        slot = self.slots.get(message.register_id)
        if slot is None:
            slot = self.slots[message.register_id] = self._new_slot()
        if message.ts > slot.ts or (message.ts == slot.ts
                                    and message.wid >= slot.wid):
            slot.ts = message.ts
            slot.wid = message.wid
            slot.pw = message.pw
            slot.w = message.w
        elif not self.config.is_multi_writer:
            return None
        elif message.w.tag > slot.w.tag:
            # Losing writer's tuple is still news for the w field.
            slot.w = message.w
        return WriteAck(ts=message.ts,
                        object_index=self.object_index,
                        register_id=message.register_id,
                        wid=message.wid)

    # -- lines 13-17 -----------------------------------------------------
    def _read_reply(self, message: ReadRequest) -> Optional[ReadAck]:
        j = message.reader_index
        if not 0 <= j < self.config.num_readers:
            return None
        slot = self.slots.get(message.register_id)
        if slot is None:
            slot = self.slots[message.register_id] = self._new_slot()
        if message.tsr > slot.tsr[j]:
            slot.tsr[j] = message.tsr
            return ReadAck(
                round_index=message.round_index,
                tsr=slot.tsr[j],
                object_index=self.object_index,
                pw=slot.pw,
                w=slot.w,
                register_id=message.register_id,
            )
        return None

    # ------------------------------------------------------------------
    def describe_state(self) -> str:
        if not self.slots or set(self.slots) == {DEFAULT_REGISTER}:
            slot = self.slots.get(DEFAULT_REGISTER) or self._new_slot()
            return (f"s{self.object_index + 1}: ts={slot.ts}, "
                    f"pw={slot.pw!r}, w={slot.w!r}, tsr={slot.tsr}")
        return (f"s{self.object_index + 1}: "
                + "; ".join(f"{rid}: ts={slot.ts}, pw={slot.pw!r}"
                            for rid, slot in sorted(self.slots.items())))
