"""Base-object automaton of the safe storage (Figure 3).

Each object ``s_i`` maintains, *per register*, three fields:

* ``pw`` -- the timestamp-value pair of the latest (pre-)write round seen;
* ``w``  -- the latest complete write tuple ``<tsval, tsrarray>``;
* ``tsr[j]`` -- the highest timestamp received from reader ``r_j``.

Handlers follow the figure line by line, including the guards: a PW message
updates state only for *strictly* newer timestamps (line 4), a W message
also for equal ones (line 9 -- the W of write ``k`` must land after the PW
of write ``k``), and READ requests update ``tsr[j]`` only when the reader's
timestamp moved forward (line 14).  Acknowledgments are sent only when the
guard passes, exactly as in the figure; stale or replayed traffic earns no
reply at all.

One automaton serves arbitrarily many logical registers: protocol state
lives in per-register slots keyed by the messages' ``register_id``
(the paper's single register is the ``DEFAULT_REGISTER`` slot), so a fixed
replica set multiplexes a whole keyspace without extra processes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, List

from ...automata.base import MultiRegisterObject, Outgoing
from ...config import SystemConfig
from ...messages import Pw, PwAck, ReadAck, ReadRequest, W, WriteAck
from ...types import (DEFAULT_REGISTER, INITIAL_TSVAL, ProcessId,
                      TimestampValue, WriteTuple, initial_write_tuple)


@dataclass
class SafeSlot:
    """Per-register state of one safe object (Figure 3, lines 1-2)."""

    ts: int
    pw: TimestampValue
    w: WriteTuple
    tsr: List[int]


class SafeObject(MultiRegisterObject):
    """Figure 3: ``code of object s_i`` for the safe storage."""

    def __init__(self, object_index: int, config: SystemConfig):
        super().__init__(object_index)
        self.config = config

    def _new_slot(self) -> SafeSlot:
        # Initialization block (lines 1-2), per register.
        return SafeSlot(
            ts=0,
            pw=INITIAL_TSVAL,
            w=initial_write_tuple(self.config.num_objects,
                                  self.config.num_readers),
            tsr=[0] * self.config.num_readers,
        )

    # -- single-register compatibility views ----------------------------
    @property
    def ts(self) -> int:
        return self._slot(DEFAULT_REGISTER).ts

    @property
    def pw(self) -> TimestampValue:
        return self._slot(DEFAULT_REGISTER).pw

    @property
    def w(self) -> WriteTuple:
        return self._slot(DEFAULT_REGISTER).w

    @property
    def tsr(self) -> List[int]:
        return self._slot(DEFAULT_REGISTER).tsr

    # ------------------------------------------------------------------
    def on_message(self, sender: ProcessId, message: Any) -> Outgoing:
        if isinstance(message, Pw):
            return self._on_pw(sender, message)
        if isinstance(message, W):
            return self._on_w(sender, message)
        if isinstance(message, ReadRequest):
            return self._on_read(sender, message)
        # Unknown traffic (e.g. probes from baselines wired incorrectly) is
        # ignored rather than crashing the object: a storage element must
        # never be taken down by a malformed client message.
        return []

    # -- lines 3-7 -------------------------------------------------------
    def _on_pw(self, sender: ProcessId, message: Pw) -> Outgoing:
        slot = self._slot(message.register_id)
        if message.ts > slot.ts:
            slot.ts = message.ts
            slot.pw = message.pw
            slot.w = message.w
            ack = PwAck(ts=slot.ts, object_index=self.object_index,
                        tsr=tuple(slot.tsr),
                        register_id=message.register_id)
            return [(sender, ack)]
        return []

    # -- lines 8-12 ------------------------------------------------------
    def _on_w(self, sender: ProcessId, message: W) -> Outgoing:
        slot = self._slot(message.register_id)
        if message.ts >= slot.ts:
            slot.ts = message.ts
            slot.pw = message.pw
            slot.w = message.w
            return [(sender, WriteAck(ts=slot.ts,
                                      object_index=self.object_index,
                                      register_id=message.register_id))]
        return []

    # -- lines 13-17 -----------------------------------------------------
    def _on_read(self, sender: ProcessId, message: ReadRequest) -> Outgoing:
        j = message.reader_index
        if not 0 <= j < self.config.num_readers:
            return []
        slot = self._slot(message.register_id)
        if message.tsr > slot.tsr[j]:
            slot.tsr[j] = message.tsr
            ack = ReadAck(
                round_index=message.round_index,
                tsr=slot.tsr[j],
                object_index=self.object_index,
                pw=slot.pw,
                w=slot.w,
                register_id=message.register_id,
            )
            return [(sender, ack)]
        return []

    # ------------------------------------------------------------------
    def describe_state(self) -> str:
        if not self.slots or set(self.slots) == {DEFAULT_REGISTER}:
            slot = self.slots.get(DEFAULT_REGISTER) or self._new_slot()
            return (f"s{self.object_index + 1}: ts={slot.ts}, "
                    f"pw={slot.pw!r}, w={slot.w!r}, tsr={slot.tsr}")
        return (f"s{self.object_index + 1}: "
                + "; ".join(f"{rid}: ts={slot.ts}, pw={slot.pw!r}"
                            for rid, slot in sorted(self.slots.items())))
