"""Base-object automaton of the safe storage (Figure 3).

Each object ``s_i`` maintains three fields:

* ``pw`` -- the timestamp-value pair of the latest (pre-)write round seen;
* ``w``  -- the latest complete write tuple ``<tsval, tsrarray>``;
* ``tsr[j]`` -- the highest timestamp received from reader ``r_j``.

Handlers follow the figure line by line, including the guards: a PW message
updates state only for *strictly* newer timestamps (line 4), a W message
also for equal ones (line 9 -- the W of write ``k`` must land after the PW
of write ``k``), and READ requests update ``tsr[j]`` only when the reader's
timestamp moved forward (line 14).  Acknowledgments are sent only when the
guard passes, exactly as in the figure; stale or replayed traffic earns no
reply at all.
"""

from __future__ import annotations

from typing import Any, List

from ...automata.base import ObjectAutomaton, Outgoing
from ...config import SystemConfig
from ...messages import Pw, PwAck, ReadAck, ReadRequest, W, WriteAck
from ...types import (INITIAL_TSVAL, ProcessId, TimestampValue, WriteTuple,
                      initial_write_tuple, reader)


class SafeObject(ObjectAutomaton):
    """Figure 3: ``code of object s_i`` for the safe storage."""

    def __init__(self, object_index: int, config: SystemConfig):
        super().__init__(object_index)
        self.config = config
        # Initialization block (lines 1-2).
        self.ts: int = 0
        self.pw: TimestampValue = INITIAL_TSVAL
        self.w: WriteTuple = initial_write_tuple(config.num_objects,
                                                 config.num_readers)
        self.tsr: List[int] = [0] * config.num_readers

    # ------------------------------------------------------------------
    def on_message(self, sender: ProcessId, message: Any) -> Outgoing:
        if isinstance(message, Pw):
            return self._on_pw(sender, message)
        if isinstance(message, W):
            return self._on_w(sender, message)
        if isinstance(message, ReadRequest):
            return self._on_read(sender, message)
        # Unknown traffic (e.g. probes from baselines wired incorrectly) is
        # ignored rather than crashing the object: a storage element must
        # never be taken down by a malformed client message.
        return []

    # -- lines 3-7 -------------------------------------------------------
    def _on_pw(self, sender: ProcessId, message: Pw) -> Outgoing:
        if message.ts > self.ts:
            self.ts = message.ts
            self.pw = message.pw
            self.w = message.w
            ack = PwAck(ts=self.ts, object_index=self.object_index,
                        tsr=tuple(self.tsr))
            return [(sender, ack)]
        return []

    # -- lines 8-12 ------------------------------------------------------
    def _on_w(self, sender: ProcessId, message: W) -> Outgoing:
        if message.ts >= self.ts:
            self.ts = message.ts
            self.pw = message.pw
            self.w = message.w
            return [(sender, WriteAck(ts=self.ts,
                                      object_index=self.object_index))]
        return []

    # -- lines 13-17 -----------------------------------------------------
    def _on_read(self, sender: ProcessId, message: ReadRequest) -> Outgoing:
        j = message.reader_index
        if not 0 <= j < self.config.num_readers:
            return []
        if message.tsr > self.tsr[j]:
            self.tsr[j] = message.tsr
            ack = ReadAck(
                round_index=message.round_index,
                tsr=self.tsr[j],
                object_index=self.object_index,
                pw=self.pw,
                w=self.w,
            )
            return [(sender, ack)]
        return []

    # ------------------------------------------------------------------
    def describe_state(self) -> str:
        return (f"s{self.object_index + 1}: ts={self.ts}, pw={self.pw!r}, "
                f"w={self.w!r}, tsr={self.tsr}")
