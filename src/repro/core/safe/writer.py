"""Writer side of the safe storage (Figure 2), plus the MWMR extension.

The SWMR WRITE proceeds in exactly two rounds:

* **PW** (pre-write): install the new timestamp-value pair ``pw = <ts, v>``
  in the objects' ``pw`` fields *and read back* each object's reader
  timestamps ``tsr`` (this is the unusual move -- the writer reads while
  writing);
* **W**: install the complete tuple ``w = <pw, currenttsrarray>`` that
  embeds the collected reader-timestamp snapshot.  Readers later use that
  snapshot to expose Byzantine objects (the ``conflict`` predicate).

With multiple writers (``config.num_writers > 1``) a **TAG** round is
prepended: the writer queries a quorum for the highest ``(epoch,
writer_id)`` tag, bumps the epoch, and tie-breaks with its own writer id
-- the classic MWMR read-timestamp phase.  Quorum intersection with any
completed write's W round contains at least ``b + 1`` objects at optimal
resilience, so at least one correct object reports a tag at least as high
as any completed write's; real-time write order therefore maps to tag
order.  Single-writer systems skip the round entirely and keep the
paper's exact 2-round WRITE.

The writer's persistent variables (``ts`` and the last installed ``w``)
live in :class:`SafeWriterState`, shared across that writer's operations,
mirroring the paper's process-local state.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Optional, Set

from ...automata.base import ClientOperation, Outgoing
from ...automata.rounds import TagDiscovery
from ...config import SystemConfig
from ...errors import FencedWriteError, ProtocolError
from ...messages import (Pw, PwAck, TagQuery, TagQueryAck, W, WriteAck,
                         WriteFenced)
from ...types import (ProcessId, TimestampValue, TsrArray, WriterTag,
                      WriteTuple, _Bottom, initial_write_tuple, obj, writer)

#: Phase names for tracing/assertions.
PHASE_TAG = "TAG"
PHASE_PW = "PW"
PHASE_W = "W"


@dataclass
class SafeWriterState:
    """Persistent writer variables (Figure 2, initialization block)."""

    config: SystemConfig
    ts: int = 0
    w: WriteTuple = field(default=None)  # type: ignore[assignment]
    writer_index: int = 0

    def __post_init__(self) -> None:
        if self.w is None:
            self.w = initial_write_tuple(self.config.num_objects,
                                         self.config.num_readers)


class SafeWriteOperation(ClientOperation):
    """One ``WRITE(v)`` invocation (Figure 2, lines 3-11)."""

    kind = "WRITE"

    def __init__(self, state: SafeWriterState, value: Any):
        super().__init__(writer(state.writer_index))
        if isinstance(value, _Bottom):
            raise ProtocolError("⊥ is not a valid input value for WRITE")
        self.state = state
        self.config = state.config
        self.value = value
        self.wid = state.writer_index
        #: MWMR systems prepend the tag-discovery round; the single-writer
        #: system trusts the local monotone counter, exactly as the paper.
        self.discover_tag = state.config.is_multi_writer
        self.phase = PHASE_TAG if self.discover_tag else PHASE_PW
        self.ts: int = 0
        self.pw: TimestampValue = None  # type: ignore[assignment]
        self.current_tsrarray: TsrArray = None  # type: ignore[assignment]
        self.discovery: Optional[TagDiscovery] = None
        self._pw_ackers: Set[int] = set()
        self._w_ackers: Set[int] = set()
        self._fencers: Set[int] = set()

    # ------------------------------------------------------------------
    def start(self) -> Outgoing:
        if self.discover_tag:
            # MWMR round 0: learn the highest installed tag from a quorum.
            self.discovery = TagDiscovery(
                nonce=self.operation_id,
                quorum=self.config.quorum_size,
                writer_id=self.wid,
                floor=WriterTag(self.state.ts, self.wid),
            )
            self.begin_round()
            query = TagQuery(nonce=self.operation_id,
                             register_id=self.register_id)
            return [(obj(i), query)
                    for i in range(self.config.num_objects)]
        # Lines 3-4: inc(ts); the single writer's counter is authoritative.
        return self._start_pw_round(self.state.ts + 1)

    def _start_pw_round(self, epoch: int) -> Outgoing:
        cfg = self.config
        self.phase = PHASE_PW
        self.state.ts = epoch
        self.ts = epoch
        self.pw = TimestampValue(self.ts, self.value, wid=self.wid)
        self.tag = self.pw.tag
        self.current_tsrarray = TsrArray.empty(cfg.num_objects,
                                               cfg.num_readers)
        # Line 5: PW carries the new pair plus the *previous* write tuple,
        # so laggards catch up on the last complete write.
        message = Pw(ts=self.ts, pw=self.pw, w=self.state.w,
                     register_id=self.register_id, wid=self.wid)
        self.begin_round()
        return [(obj(i), message) for i in range(cfg.num_objects)]

    # ------------------------------------------------------------------
    def on_message(self, sender: ProcessId, message: Any) -> Outgoing:
        if self.done or not sender.is_object:
            return []
        if isinstance(message, TagQueryAck):
            return self._on_tag_ack(sender, message)
        if isinstance(message, PwAck):
            return self._on_pw_ack(sender, message)
        if isinstance(message, WriteAck):
            return self._on_write_ack(sender, message)
        if isinstance(message, WriteFenced):
            return self._on_write_fenced(sender, message)
        return []

    def _on_write_fenced(self, sender: ProcessId,
                         message: WriteFenced) -> Outgoing:
        """Abort once ``b + 1`` objects report an epoch fence.

        A single report may be a Byzantine lie, but ``b + 1`` distinct
        reports include a correct fenced object -- and a fence installed
        at a quorum leaves at most ``t + b < S - t`` objects that could
        still acknowledge, so this write can never complete.  Raising
        here fails the caller's waiter instead of hanging it; the value
        was not applied at any correct fenced object.
        """
        if (message.register_id != self.register_id
                or message.epoch != self.ts or message.wid != self.wid
                or self.phase not in (PHASE_PW, PHASE_W)):
            return []
        self._fencers.add(sender.index)
        if len(self._fencers) > self.config.b:
            raise FencedWriteError(
                f"WRITE#{self.operation_id} on {self.register_id!r} "
                f"(epoch {self.ts}) refused by epoch fence "
                f"{message.fence_epoch}: the register was handed off; "
                f"re-route and retry")
        return []

    def _on_tag_ack(self, sender: ProcessId,
                    message: TagQueryAck) -> Outgoing:
        if (self.phase != PHASE_TAG or self.discovery is None
                or message.register_id != self.register_id):
            return []
        self.discovery.offer(sender.index, message.nonce, message.tag)
        if self.discovery.ready():
            chosen = self.discovery.chosen_tag()
            return self._start_pw_round(chosen.epoch)
        return []

    def _on_pw_ack(self, sender: ProcessId, message: PwAck) -> Outgoing:
        # Freshness: the ack must echo this write's tag and register.
        # Identity comes from the channel (sender), never from the payload
        # -- a Byzantine object cannot impersonate a peer.
        if (message.ts != self.ts or message.wid != self.wid
                or self.phase != PHASE_PW
                or message.register_id != self.register_id):
            return []
        i = sender.index
        if i in self._pw_ackers:
            return []
        self._pw_ackers.add(i)
        tsr_row = tuple(message.tsr)
        if len(tsr_row) != self.config.num_readers:
            # Malformed (necessarily Byzantine) row: count the ack but
            # record nothing for it -- nil entries are always sound.
            tsr_row = (None,) * self.config.num_readers
        # Line 11: currenttsrarray[i] := tsr.
        self.current_tsrarray = self.current_tsrarray.with_row(i, tsr_row)
        # Line 6: proceed after S - t distinct acks.
        if len(self._pw_ackers) >= self.config.quorum_size:
            return self._start_w_round()
        return []

    def _start_w_round(self) -> Outgoing:
        # Line 7: freeze w := <pw, currenttsrarray> (persists for the next
        # write's PW message).
        w_tuple = WriteTuple(self.pw, self.current_tsrarray)
        self.state.w = w_tuple
        self.phase = PHASE_W
        message = W(ts=self.ts, pw=self.pw, w=w_tuple,
                    register_id=self.register_id, wid=self.wid)
        self.begin_round()
        # Line 8: second round to all objects.
        return [(obj(i), message) for i in range(self.config.num_objects)]

    def _on_write_ack(self, sender: ProcessId, message: WriteAck) -> Outgoing:
        if (message.ts != self.ts or message.wid != self.wid
                or self.phase != PHASE_W
                or message.register_id != self.register_id):
            return []
        self._w_ackers.add(sender.index)
        # Lines 9-10: S - t acks complete the WRITE.
        if len(self._w_ackers) >= self.config.quorum_size:
            return self.complete("OK")
        return []

    # ------------------------------------------------------------------
    def describe(self) -> str:
        suffix = "" if self.wid == 0 else f" by {self.client_id!r}"
        return f"WRITE#{self.operation_id}({self.value!r}) ts={self.ts}{suffix}"
