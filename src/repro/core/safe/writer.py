"""Writer side of the safe storage (Figure 2), plus the MWMR extension.

The SWMR WRITE proceeds in exactly two rounds:

* **PW** (pre-write): install the new timestamp-value pair ``pw = <ts, v>``
  in the objects' ``pw`` fields *and read back* each object's reader
  timestamps ``tsr`` (this is the unusual move -- the writer reads while
  writing);
* **W**: install the complete tuple ``w = <pw, currenttsrarray>`` that
  embeds the collected reader-timestamp snapshot.  Readers later use that
  snapshot to expose Byzantine objects (the ``conflict`` predicate).

With multiple writers (``config.num_writers > 1``) a **TAG** round is
prepended: the writer queries a quorum for the highest ``(epoch,
writer_id)`` tag, bumps the epoch, and tie-breaks with its own writer id
-- the classic MWMR read-timestamp phase.  Quorum intersection with any
completed write's W round contains at least ``b + 1`` objects at optimal
resilience, so at least one correct object reports a tag at least as high
as any completed write's; real-time write order therefore maps to tag
order.  Single-writer systems skip the round entirely and keep the
paper's exact 2-round WRITE.

The writer's persistent variables (``ts`` and the last installed ``w``)
live in :class:`SafeWriterState`, shared across that writer's operations,
mirroring the paper's process-local state.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Optional, Set, Tuple

from ...automata.base import ClientOperation, Outgoing, Sink
from ...automata.rounds import TagDiscovery
from ...config import SystemConfig
from ...errors import FencedWriteError, ProtocolError
from ...messages import (Message, Pw, PwAck, TagQuery, TagQueryAck, W,
                         WriteAck, WriteFenced)
from ...types import (ProcessId, TimestampValue, TsrArray, WriterTag,
                      WriteTuple, _Bottom, initial_write_tuple, obj, writer)

#: Phase names for tracing/assertions.
PHASE_TAG = "TAG"
PHASE_PW = "PW"
PHASE_W = "W"


@dataclass
class SafeWriterState:
    """Persistent writer variables (Figure 2, initialization block)."""

    config: SystemConfig
    ts: int = 0
    w: WriteTuple = field(default=None)  # type: ignore[assignment]
    writer_index: int = 0

    def __post_init__(self) -> None:
        if self.w is None:
            self.w = initial_write_tuple(self.config.num_objects,
                                         self.config.num_readers)


class SafeWriteOperation(ClientOperation):
    """One ``WRITE(v)`` invocation (Figure 2, lines 3-11).

    Implemented in the *absorb/advance* shape of the vector round engine:
    inbound acks are recorded with no decisions, and :meth:`advance`
    evaluates the round conditions over everything recorded so far.  The
    classic per-message :meth:`on_message` composes the two, which keeps
    one copy of the protocol logic for both execution modes.  Note one
    (sound) behavioural freedom: ``currenttsrarray`` is assembled from
    *every* PW-ack absorbed when the quorum condition is evaluated --
    under burst delivery that may be more than ``S - t`` rows, exactly
    as if the scheduler had delivered those acks before the writer's
    step.
    """

    kind = "WRITE"

    def __init__(self, state: SafeWriterState, value: Any):
        super().__init__(writer(state.writer_index))
        if isinstance(value, _Bottom):
            raise ProtocolError("⊥ is not a valid input value for WRITE")
        self.state = state
        self.config = state.config
        self.value = value
        self.wid = state.writer_index
        #: MWMR systems prepend the tag-discovery round; the single-writer
        #: system trusts the local monotone counter, exactly as the paper.
        self.discover_tag = state.config.is_multi_writer
        self.phase = PHASE_TAG if self.discover_tag else PHASE_PW
        self.ts: int = 0
        self.pw: TimestampValue = None  # type: ignore[assignment]
        self.current_tsrarray: TsrArray = None  # type: ignore[assignment]
        self.discovery: Optional[TagDiscovery] = None
        #: Line 11 evidence: object index -> reported tsr row.
        self._pw_rows: Dict[int, Tuple[Optional[int], ...]] = {}
        self._w_ackers: Set[int] = set()
        self._fencers: Set[int] = set()
        self._fence_epoch_seen: int = 0

    # ------------------------------------------------------------------
    def start(self) -> Outgoing:
        if self.discover_tag:
            # MWMR round 0: learn the highest installed tag from a quorum.
            self.discovery = TagDiscovery(
                nonce=self.operation_id,
                quorum=self.config.quorum_size,
                writer_id=self.wid,
                floor=WriterTag(self.state.ts, self.wid),
            )
            self.begin_round()
            query = TagQuery(nonce=self.operation_id,
                             register_id=self.register_id)
            return [(obj(i), query)
                    for i in range(self.config.num_objects)]
        # Lines 3-4: inc(ts); the single writer's counter is authoritative.
        message = self._start_pw_round(self.state.ts + 1)
        return [(obj(i), message) for i in range(self.config.num_objects)]

    def _start_pw_round(self, epoch: int) -> Pw:
        self.phase = PHASE_PW
        self.state.ts = epoch
        self.ts = epoch
        self.pw = TimestampValue(self.ts, self.value, wid=self.wid)
        self.tag = self.pw.tag
        # Line 5: PW carries the new pair plus the *previous* write tuple,
        # so laggards catch up on the last complete write.
        self.begin_round()
        return Pw(ts=self.ts, pw=self.pw, w=self.state.w,
                  register_id=self.register_id, wid=self.wid)

    # -- vector rounds (native) ------------------------------------------
    def start_vector(self, sink: Sink, leftovers: Outgoing) -> None:
        if self.discover_tag:
            self.discovery = TagDiscovery(
                nonce=self.operation_id,
                quorum=self.config.quorum_size,
                writer_id=self.wid,
                floor=WriterTag(self.state.ts, self.wid),
            )
            self.begin_round()
            sink.append(TagQuery(nonce=self.operation_id,
                                 register_id=self.register_id))
            return
        sink.append(self._start_pw_round(self.state.ts + 1))

    def absorb(self, sender: ProcessId, message: Any) -> None:
        """Record one ack (no decisions).  Freshness: acks must echo this
        write's tag and register; identity comes from the channel
        (sender), never from the payload -- a Byzantine object cannot
        impersonate a peer."""
        if self.done or sender.role != "object":
            return
        kind = message.__class__
        if kind is PwAck:
            if (self.phase == PHASE_PW and message.ts == self.ts
                    and message.wid == self.wid
                    and message.register_id == self.register_id
                    and sender.index not in self._pw_rows):
                tsr_row = tuple(message.tsr)
                if len(tsr_row) != self.config.num_readers:
                    # Malformed (necessarily Byzantine) row: count the ack
                    # but record nothing -- nil entries are always sound.
                    tsr_row = (None,) * self.config.num_readers
                # Line 11: currenttsrarray[i] := tsr.
                self._pw_rows[sender.index] = tsr_row
        elif kind is WriteAck:
            if (self.phase == PHASE_W and message.ts == self.ts
                    and message.wid == self.wid
                    and message.register_id == self.register_id):
                self._w_ackers.add(sender.index)
        elif kind is TagQueryAck:
            if (self.phase == PHASE_TAG and self.discovery is not None
                    and message.register_id == self.register_id):
                self.discovery.offer(sender.index, message.nonce,
                                     message.tag)
        elif kind is WriteFenced:
            if (message.register_id == self.register_id
                    and message.epoch == self.ts
                    and message.wid == self.wid
                    and self.phase in (PHASE_PW, PHASE_W)):
                self._fencers.add(sender.index)
                self._fence_epoch_seen = message.fence_epoch

    def advance(self, sink: Sink, leftovers: Outgoing) -> None:
        """Evaluate the round conditions once over the absorbed acks."""
        if self.done:
            return
        if len(self._fencers) > self.config.b:
            # ``b + 1`` distinct fence reports include a correct fenced
            # object -- and a fence installed at a quorum leaves at most
            # ``t + b < S - t`` objects that could still acknowledge, so
            # this write can never complete.  Raising fails the caller's
            # waiter instead of hanging it; the value was not applied at
            # any correct fenced object.
            raise FencedWriteError(
                f"WRITE#{self.operation_id} on {self.register_id!r} "
                f"(epoch {self.ts}) refused by epoch fence "
                f"{self._fence_epoch_seen}: the register was handed off; "
                f"re-route and retry")
        phase = self.phase
        if phase == PHASE_PW:
            # Line 6: proceed after S - t distinct acks.
            if len(self._pw_rows) >= self.config.quorum_size:
                sink.append(self._start_w_round())
        elif phase == PHASE_W:
            # Lines 9-10: S - t acks complete the WRITE.
            if len(self._w_ackers) >= self.config.quorum_size:
                self.complete("OK")
        elif phase == PHASE_TAG:
            if self.discovery is not None and self.discovery.ready():
                sink.append(
                    self._start_pw_round(self.discovery.chosen_tag().epoch))

    # ------------------------------------------------------------------
    def on_message(self, sender: ProcessId, message: Any) -> Outgoing:
        if self.done or not sender.is_object:
            return []
        self.absorb(sender, message)
        sink: Sink = []
        outgoing: Outgoing = []
        self.advance(sink, outgoing)
        for broadcast in sink:
            outgoing.extend((obj(i), broadcast)
                            for i in range(self.config.num_objects))
        return outgoing

    def _start_w_round(self) -> W:
        # Line 7: freeze w := <pw, currenttsrarray> (persists for the next
        # write's PW message).
        cfg = self.config
        nil_row = (None,) * cfg.num_readers
        rows = self._pw_rows
        self.current_tsrarray = TsrArray(tuple(
            rows.get(i, nil_row) for i in range(cfg.num_objects)))
        w_tuple = WriteTuple(self.pw, self.current_tsrarray)
        self.state.w = w_tuple
        self.phase = PHASE_W
        self.begin_round()
        # Line 8: second round to all objects.
        return W(ts=self.ts, pw=self.pw, w=w_tuple,
                 register_id=self.register_id, wid=self.wid)

    # ------------------------------------------------------------------
    def describe(self) -> str:
        suffix = "" if self.wid == 0 else f" by {self.client_id!r}"
        return f"WRITE#{self.operation_id}({self.value!r}) ts={self.ts}{suffix}"
