"""Extension: an *atomic* storage via reader write-back (beyond the paper).

The paper stops at regular semantics and notes (Section 1) that
comparable *atomic* data-centric storages either are not optimally
resilient or do not achieve the optimal worst-case read time.  This
subpackage implements the classic upgrade on top of the Section 5 regular
protocol: before returning candidate ``c``, the reader **writes ``c``
back** to a quorum, so every subsequent read finds at least ``b + 1``
correct witnesses of ``c`` and can never observe an older value --
eliminating the new/old inversion that separates regular from atomic.

Costs, consistent with the paper's remark:

* READ takes up to **3** rounds (two evidence rounds + write-back) --
  deliberately *not* 2, matching the literature's observation that
  optimal-resilience atomic reads do not match the 2-round bound;
* objects accept history entries from readers (who are non-malicious in
  the model -- clients only crash), guarded so reader write-backs can
  complete but never overwrite a *complete* slot with different content.

Status: extension, validated empirically (atomicity checker over
adversarial + randomized schedules in tests and experiment E11); no
claim of a formal proof is made here.
"""

from .protocol import (AtomicReadOperation, AtomicObject,
                       AtomicStorageProtocol, WriteBack, WriteBackAck)

__all__ = [
    "AtomicStorageProtocol",
    "AtomicObject",
    "AtomicReadOperation",
    "WriteBack",
    "WriteBackAck",
]
