"""Automata of the atomic (write-back) extension."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, List, Set

from ...automata.base import Outgoing, Sink
from ...config import SystemConfig
from ...messages import HistoryEntry, Message
from ...protocols import ATOMIC
from ...types import DEFAULT_REGISTER, TAG0, ProcessId, WriteTuple, obj
from ..regular import (RegularObject, RegularReaderState,
                       RegularReadOperation, RegularStorageProtocol)
from ..regular.reader import PHASE_WRITE_BACK


@dataclass(frozen=True, slots=True)
class WriteBack(Message):
    """Reader-to-object: install tuple ``c`` at slot ``c.ts``.

    Readers are non-malicious in the model (clients may only crash), so
    objects may honour these -- but only into empty or incomplete slots:
    a complete writer-sourced entry is never overwritten.
    """

    c: WriteTuple
    nonce: int
    reader_index: int
    register_id: str = DEFAULT_REGISTER


@dataclass(frozen=True, slots=True)
class WriteBackAck(Message):
    nonce: int
    object_index: int
    register_id: str = DEFAULT_REGISTER


class AtomicObject(RegularObject):
    """Regular object that additionally accepts reader write-backs."""

    #: The write-back override only *adds* a message type; the regular
    #: object's batched fast path stays valid for the types it handles
    #: (unknown types fall through to ``on_message`` there).
    _on_message_batch_compatible = True

    def on_message(self, sender: ProcessId, message: Any) -> Outgoing:
        if isinstance(message, WriteBack):
            return self._on_write_back(sender, message)
        return super().on_message(sender, message)

    def _on_write_back(self, sender: ProcessId,
                       message: WriteBack) -> Outgoing:
        if not sender.is_reader:
            return []  # only readers may write back
        history = self._slot(message.register_id).history
        entry = history.get(message.c.tag)
        if entry is None or entry.w is None:
            history[message.c.tag] = HistoryEntry(pw=message.c.tsval,
                                                  w=message.c)
        # Complete slots stay as the writer installed them; the ack is
        # sent regardless -- the reader only needs to know a quorum has
        # *at least* this information.
        return [(sender, WriteBackAck(nonce=message.nonce,
                                      object_index=self.object_index,
                                      register_id=message.register_id))]


class AtomicReadOperation(RegularReadOperation):
    """Regular read + third write-back round before returning."""

    def __init__(self, state: RegularReaderState):
        super().__init__(state, cached=False)
        self._chosen: Any = None
        self._wb_nonce: int = 0
        self._wb_ackers: Set[int] = set()
        self._outbox: Outgoing = []

    # ------------------------------------------------------------------
    def absorb(self, sender: ProcessId, message: Any) -> None:
        if self.done or not sender.is_object:
            return
        if isinstance(message, WriteBackAck):
            if (self.phase == PHASE_WRITE_BACK
                    and message.nonce == self._wb_nonce
                    and message.register_id == self.register_id):
                self._wb_ackers.add(sender.index)
            return
        super().absorb(sender, message)

    def advance(self, sink: Sink, leftovers: Outgoing) -> None:
        if self.done:
            return
        if self.phase == PHASE_WRITE_BACK:
            if len(self._wb_ackers) >= self.config.quorum_size:
                self.tag = self._chosen.tag
                # Write-back reached a quorum: the chosen tuple is now
                # quorum-held, which is exactly the certification a lease
                # needs under *atomic* semantics.
                self.state.grant_lease(self._chosen.tag,
                                       self._chosen.tsval.value)
                self.complete(self._chosen.tsval.value)
            return
        super().advance(sink, leftovers)
        # The overridden _maybe_return may have queued the write-back
        # broadcast; splice it into this step's sends.
        if self._outbox:
            sink.append(self._outbox[0][1])
            self._outbox = []

    # ------------------------------------------------------------------
    def _maybe_return(self) -> None:
        if self.done or self.phase == PHASE_WRITE_BACK:
            return
        candidate = self.evidence.returnable()
        if candidate is None:
            return
        if candidate.tag >= self.state.cache_tag:
            self.state.cache_tag = candidate.tag
            self.state.cache_value = candidate.tsval.value
        if candidate.tag == TAG0:
            # The initial tuple is held by every correct object already;
            # writing it back would add nothing.
            self.tag = TAG0
            self.complete(candidate.tsval.value)
            return
        self._begin_write_back(candidate)

    def _begin_write_back(self, candidate: WriteTuple) -> None:
        self.phase = PHASE_WRITE_BACK
        self._chosen = candidate
        self.state.tsr += 1        # fresh nonce from the reader's clock
        self._wb_nonce = self.state.tsr
        self.begin_round()
        message = WriteBack(c=candidate, nonce=self._wb_nonce,
                            reader_index=self.reader_index,
                            register_id=self.register_id)
        self._outbox = [(obj(i), message)
                        for i in range(self.config.num_objects)]

    def describe(self) -> str:
        return (f"ATOMIC-READ#{self.operation_id} by "
                f"r{self.reader_index + 1}")


class AtomicStorageProtocol(RegularStorageProtocol):
    """Atomic SWMR storage: regular protocol + reader write-back.

    READ worst case is 3 rounds; WRITE stays at 2.  See the package
    docstring for status and caveats.
    """

    name = "gv-atomic-ext"
    semantics = ATOMIC
    read_rounds_worst_case = 3
    cached_reads = False

    def make_objects(self, config: SystemConfig) -> List[AtomicObject]:
        self.validate_config(config)
        return [AtomicObject(i, config) for i in range(config.num_objects)]

    def make_read(self, reader_state: RegularReaderState
                  ) -> AtomicReadOperation:
        return AtomicReadOperation(reader_state)
