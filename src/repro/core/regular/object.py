"""Base-object automaton of the regular storage (Figure 5).

Unlike the safe protocol's object, which keeps only the latest ``pw``/``w``
pair, the regular object records *every* value it receives from the writer
in an indexed ``history``: ``history[ts] = <pw, w>``.  On a PW for write
``ts'`` it provisionally records ``history[ts'] = <pw', nil>`` and
back-fills the previous write's complete tuple at ``history[ts' - 1]``
(PW messages carry the previous ``w``); on a W it completes
``history[ts']``.

READ requests are answered with the history -- in full, or (Section 5.1)
only the suffix from the reader's cached timestamp ``from_ts`` onward,
which is the optimization experiment E6 quantifies.

As with the safe object, all of this state is kept *per register* in
lazily created slots, so one replica set serves many SWMR registers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List

from ...automata.base import MultiRegisterObject, Outgoing
from ...config import SystemConfig
from ...messages import (HistoryEntry, HistoryReadAck, Pw, ReadRequest, PwAck,
                         W, WriteAck)
from ...types import (DEFAULT_REGISTER, INITIAL_TSVAL, ProcessId,
                      initial_write_tuple)


@dataclass
class RegularSlot:
    """Per-register state of one regular object (Figure 5, lines 1-3)."""

    ts: int
    history: Dict[int, HistoryEntry]
    tsr: List[int]


class RegularObject(MultiRegisterObject):
    """Figure 5: ``code of object s_i`` for the regular storage."""

    def __init__(self, object_index: int, config: SystemConfig):
        super().__init__(object_index)
        self.config = config

    def _new_slot(self) -> RegularSlot:
        # Initialization (lines 1-3): history[0] = <pw_0, w_0>.
        w0 = initial_write_tuple(self.config.num_objects,
                                 self.config.num_readers)
        return RegularSlot(
            ts=0,
            history={0: HistoryEntry(pw=INITIAL_TSVAL, w=w0)},
            tsr=[0] * self.config.num_readers,
        )

    # -- single-register compatibility views ----------------------------
    @property
    def ts(self) -> int:
        return self._slot(DEFAULT_REGISTER).ts

    @property
    def history(self) -> Dict[int, HistoryEntry]:
        return self._slot(DEFAULT_REGISTER).history

    @property
    def tsr(self) -> List[int]:
        return self._slot(DEFAULT_REGISTER).tsr

    # ------------------------------------------------------------------
    def on_message(self, sender: ProcessId, message: Any) -> Outgoing:
        if isinstance(message, Pw):
            return self._on_pw(sender, message)
        if isinstance(message, W):
            return self._on_w(sender, message)
        if isinstance(message, ReadRequest):
            return self._on_read(sender, message)
        return []

    # -- lines 4-9 -------------------------------------------------------
    def _on_pw(self, sender: ProcessId, message: Pw) -> Outgoing:
        slot = self._slot(message.register_id)
        if message.ts > slot.ts:
            # Record the new pre-write and back-fill the previous write's
            # complete tuple carried by the PW message.
            slot.history[message.ts] = HistoryEntry(pw=message.pw, w=None)
            slot.history[message.w.ts] = HistoryEntry(pw=message.w.tsval,
                                                      w=message.w)
            slot.ts = message.ts
            return [(sender, PwAck(ts=slot.ts,
                                   object_index=self.object_index,
                                   tsr=tuple(slot.tsr),
                                   register_id=message.register_id))]
        return []

    # -- lines 10-14 -----------------------------------------------------
    def _on_w(self, sender: ProcessId, message: W) -> Outgoing:
        slot = self._slot(message.register_id)
        if message.ts >= slot.ts:
            slot.ts = message.ts
            slot.history[message.ts] = HistoryEntry(pw=message.pw,
                                                    w=message.w)
            return [(sender, WriteAck(ts=slot.ts,
                                      object_index=self.object_index,
                                      register_id=message.register_id))]
        return []

    # -- lines 15-19 -----------------------------------------------------
    def _on_read(self, sender: ProcessId, message: ReadRequest) -> Outgoing:
        j = message.reader_index
        if not 0 <= j < self.config.num_readers:
            return []
        slot = self._slot(message.register_id)
        if message.tsr > slot.tsr[j]:
            slot.tsr[j] = message.tsr
            history = slot.history
            if message.from_ts is not None:
                # Section 5.1: ship only the suffix from the reader's
                # cached timestamp onwards.
                history = {ts: entry for ts, entry in history.items()
                           if ts >= message.from_ts}
            ack = HistoryReadAck(
                round_index=message.round_index,
                tsr=slot.tsr[j],
                object_index=self.object_index,
                history=dict(history),
                register_id=message.register_id,
            )
            return [(sender, ack)]
        return []

    # ------------------------------------------------------------------
    def describe_state(self) -> str:
        if not self.slots or set(self.slots) == {DEFAULT_REGISTER}:
            slot = self.slots.get(DEFAULT_REGISTER) or self._new_slot()
            return (f"s{self.object_index + 1}: ts={slot.ts}, "
                    f"|history|={len(slot.history)}, tsr={slot.tsr}")
        return (f"s{self.object_index + 1}: "
                + "; ".join(f"{rid}: ts={slot.ts}, "
                            f"|history|={len(slot.history)}"
                            for rid, slot in sorted(self.slots.items())))
