"""Base-object automaton of the regular storage (Figure 5).

Unlike the safe protocol's object, which keeps only the latest ``pw``/``w``
pair, the regular object records *every* value it receives from the writer
in an indexed ``history``: ``history[ts] = <pw, w>``.  On a PW for write
``ts'`` it provisionally records ``history[ts'] = <pw', nil>`` and
back-fills the previous write's complete tuple at ``history[ts' - 1]``
(PW messages carry the previous ``w``); on a W it completes
``history[ts']``.

READ requests are answered with the history -- in full, or (Section 5.1)
only the suffix from the reader's cached timestamp ``from_ts`` onward,
which is the optimization experiment E6 quantifies.
"""

from __future__ import annotations

from typing import Any, Dict, List

from ...automata.base import ObjectAutomaton, Outgoing
from ...config import SystemConfig
from ...messages import (HistoryEntry, HistoryReadAck, Pw, ReadRequest, PwAck,
                         W, WriteAck)
from ...types import INITIAL_TSVAL, ProcessId, initial_write_tuple


class RegularObject(ObjectAutomaton):
    """Figure 5: ``code of object s_i`` for the regular storage."""

    def __init__(self, object_index: int, config: SystemConfig):
        super().__init__(object_index)
        self.config = config
        # Initialization (lines 1-3): history[0] = <pw_0, w_0>.
        w0 = initial_write_tuple(config.num_objects, config.num_readers)
        self.ts: int = 0
        self.history: Dict[int, HistoryEntry] = {
            0: HistoryEntry(pw=INITIAL_TSVAL, w=w0),
        }
        self.tsr: List[int] = [0] * config.num_readers

    # ------------------------------------------------------------------
    def on_message(self, sender: ProcessId, message: Any) -> Outgoing:
        if isinstance(message, Pw):
            return self._on_pw(sender, message)
        if isinstance(message, W):
            return self._on_w(sender, message)
        if isinstance(message, ReadRequest):
            return self._on_read(sender, message)
        return []

    # -- lines 4-9 -------------------------------------------------------
    def _on_pw(self, sender: ProcessId, message: Pw) -> Outgoing:
        if message.ts > self.ts:
            # Record the new pre-write and back-fill the previous write's
            # complete tuple carried by the PW message.
            self.history[message.ts] = HistoryEntry(pw=message.pw, w=None)
            self.history[message.w.ts] = HistoryEntry(pw=message.w.tsval,
                                                      w=message.w)
            self.ts = message.ts
            return [(sender, PwAck(ts=self.ts,
                                   object_index=self.object_index,
                                   tsr=tuple(self.tsr)))]
        return []

    # -- lines 10-14 -----------------------------------------------------
    def _on_w(self, sender: ProcessId, message: W) -> Outgoing:
        if message.ts >= self.ts:
            self.ts = message.ts
            self.history[message.ts] = HistoryEntry(pw=message.pw,
                                                    w=message.w)
            return [(sender, WriteAck(ts=self.ts,
                                      object_index=self.object_index))]
        return []

    # -- lines 15-19 -----------------------------------------------------
    def _on_read(self, sender: ProcessId, message: ReadRequest) -> Outgoing:
        j = message.reader_index
        if not 0 <= j < self.config.num_readers:
            return []
        if message.tsr > self.tsr[j]:
            self.tsr[j] = message.tsr
            history = self.history
            if message.from_ts is not None:
                # Section 5.1: ship only the suffix from the reader's
                # cached timestamp onwards.
                history = {ts: entry for ts, entry in history.items()
                           if ts >= message.from_ts}
            ack = HistoryReadAck(
                round_index=message.round_index,
                tsr=self.tsr[j],
                object_index=self.object_index,
                history=dict(history),
            )
            return [(sender, ack)]
        return []

    # ------------------------------------------------------------------
    def describe_state(self) -> str:
        return (f"s{self.object_index + 1}: ts={self.ts}, "
                f"|history|={len(self.history)}, tsr={self.tsr}")
