"""Base-object automaton of the regular storage (Figure 5).

Unlike the safe protocol's object, which keeps only the latest ``pw``/``w``
pair, the regular object records *every* value it receives from writers
in an indexed ``history``: ``history[tag] = <pw, w>``, where ``tag`` is
the write's ``(epoch, writer_id)`` tag (in the paper's single-writer
setting every tag is ``(ts, 0)`` and the index degenerates to the integer
timestamp).  On a PW for write ``tag'`` it provisionally records
``history[tag'] = <pw', nil>`` and back-fills the carried previous write's
complete tuple (PW messages carry the previous ``w``); on a W it
completes ``history[tag']``.

READ requests are answered with the history -- in full, or (Section 5.1)
only the suffix from the reader's cached tag ``from_ts`` onward, which is
the optimization experiment E6 quantifies.

In multi-writer systems stale-tagged write rounds are acknowledged (and
recorded -- history is a map, concurrent writers' entries coexist) so a
writer that lost the epoch race still terminates; single-writer systems
keep the figure's no-reply discipline for stale traffic.

As with the safe object, all of this state is kept *per register* in
lazily created slots, so one replica set serves many registers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List

from ...automata.base import MultiRegisterObject, Outgoing
from ...config import SystemConfig
from ...messages import (EpochFence, HistoryEntry, HistoryReadAck, Pw,
                         ReadRequest, PwAck, TagQuery, TagQueryAck, W,
                         WriteAck)
from ...types import (DEFAULT_REGISTER, INITIAL_TSVAL, TAG0, ProcessId,
                      WriterTag, initial_write_tuple)


@dataclass
class RegularSlot:
    """Per-register state of one regular object (Figure 5, lines 1-3)."""

    ts: int
    history: Dict[WriterTag, HistoryEntry]
    tsr: List[int]
    wid: int = 0

    @property
    def tag(self) -> WriterTag:
        return WriterTag(self.ts, self.wid)


class RegularObject(MultiRegisterObject):
    """Figure 5: ``code of object s_i`` for the regular storage."""

    def __init__(self, object_index: int, config: SystemConfig):
        super().__init__(object_index)
        self.config = config

    def _new_slot(self) -> RegularSlot:
        # Initialization (lines 1-3): history[tag0] = <pw_0, w_0>.
        w0 = initial_write_tuple(self.config.num_objects,
                                 self.config.num_readers)
        return RegularSlot(
            ts=0,
            history={TAG0: HistoryEntry(pw=INITIAL_TSVAL, w=w0)},
            tsr=[0] * self.config.num_readers,
        )

    # -- single-register compatibility views ----------------------------
    @property
    def ts(self) -> int:
        return self._slot(DEFAULT_REGISTER).ts

    @property
    def history(self) -> Dict[WriterTag, HistoryEntry]:
        return self._slot(DEFAULT_REGISTER).history

    @property
    def tsr(self) -> List[int]:
        return self._slot(DEFAULT_REGISTER).tsr

    # ------------------------------------------------------------------
    def on_message(self, sender: ProcessId, message: Any) -> Outgoing:
        # Dispatch ordered by message frequency: two read rounds per READ
        # make ReadRequest the most common arrival.
        if isinstance(message, ReadRequest):
            return self._on_read(sender, message)
        if isinstance(message, Pw):
            return self._on_pw(sender, message)
        if isinstance(message, W):
            return self._on_w(sender, message)
        if isinstance(message, TagQuery):
            return self._on_tag_query(sender, message)
        if isinstance(message, EpochFence):
            return self._on_epoch_fence(sender, message)
        return []

    # -- MWMR tag discovery ----------------------------------------------
    def _on_tag_query(self, sender: ProcessId,
                      message: TagQuery) -> Outgoing:
        slot = self._slot(message.register_id)
        top = max(slot.tag, max(slot.history))
        return [(sender, TagQueryAck(nonce=message.nonce,
                                     object_index=self.object_index,
                                     epoch=top.epoch, wid=top.writer_id,
                                     register_id=message.register_id))]

    # -- lines 4-9 -------------------------------------------------------
    def _on_pw(self, sender: ProcessId, message: Pw) -> Outgoing:
        if self._fence_rejects(message.register_id, message.ts):
            return self._fence_nack(sender, message.register_id,
                                    message.ts, message.wid)
        slot = self._slot(message.register_id)
        fresh = (message.ts > slot.ts
                 or (message.ts == slot.ts and message.wid > slot.wid))
        if fresh or self.config.is_multi_writer:
            tag = message.tag
            # Record the new pre-write and back-fill the previous write's
            # complete tuple carried by the PW message.  Never demote a
            # completed entry to a provisional one (a concurrent writer's
            # W may have landed first), and skip the back-fill when the
            # previous write is already complete here -- the common case
            # after that write's own W round.
            existing = slot.history.get(tag)
            if existing is None or existing.w is None:
                slot.history[tag] = HistoryEntry(pw=message.pw, w=None)
            prev_tag = message.w.tag
            prev = slot.history.get(prev_tag)
            if prev is None or prev.w is None:
                slot.history[prev_tag] = HistoryEntry(pw=message.w.tsval,
                                                      w=message.w)
            if fresh:
                slot.ts = message.ts
                slot.wid = message.wid
            return [(sender, PwAck(ts=message.ts,
                                   object_index=self.object_index,
                                   tsr=tuple(slot.tsr),
                                   register_id=message.register_id,
                                   wid=message.wid))]
        return []

    # -- lines 10-14 -----------------------------------------------------
    def _on_w(self, sender: ProcessId, message: W) -> Outgoing:
        if self._fence_rejects(message.register_id, message.ts):
            return self._fence_nack(sender, message.register_id,
                                    message.ts, message.wid)
        slot = self._slot(message.register_id)
        fresh = (message.ts > slot.ts
                 or (message.ts == slot.ts and message.wid >= slot.wid))
        if fresh or self.config.is_multi_writer:
            if fresh:
                slot.ts = message.ts
                slot.wid = message.wid
            slot.history[message.tag] = HistoryEntry(pw=message.pw,
                                                     w=message.w)
            return [(sender, WriteAck(ts=message.ts,
                                      object_index=self.object_index,
                                      register_id=message.register_id,
                                      wid=message.wid))]
        return []

    # -- lines 15-19 -----------------------------------------------------
    def _on_read(self, sender: ProcessId, message: ReadRequest) -> Outgoing:
        j = message.reader_index
        if not 0 <= j < self.config.num_readers:
            return []
        slot = self._slot(message.register_id)
        if message.tsr > slot.tsr[j]:
            slot.tsr[j] = message.tsr
            history = slot.history
            if message.from_ts is not None and message.from_ts > TAG0:
                # Section 5.1: ship only the suffix from the reader's
                # cached tag onwards (a TAG0 cache means "everything" --
                # skip the filter pass entirely).
                from_tag = message.from_ts
                history = {tag: entry for tag, entry in history.items()
                           if tag >= from_tag}
            # No pre-copy: the ack's __post_init__ freezes its own copy,
            # insulating it from this slot's future mutations.
            ack = HistoryReadAck(
                round_index=message.round_index,
                tsr=slot.tsr[j],
                object_index=self.object_index,
                history=history,
                register_id=message.register_id,
            )
            return [(sender, ack)]
        return []

    # ------------------------------------------------------------------
    def describe_state(self) -> str:
        if not self.slots or set(self.slots) == {DEFAULT_REGISTER}:
            slot = self.slots.get(DEFAULT_REGISTER) or self._new_slot()
            return (f"s{self.object_index + 1}: ts={slot.ts}, "
                    f"|history|={len(slot.history)}, tsr={slot.tsr}")
        return (f"s{self.object_index + 1}: "
                + "; ".join(f"{rid}: ts={slot.ts}, "
                            f"|history|={len(slot.history)}"
                            for rid, slot in sorted(self.slots.items())))
