"""Base-object automaton of the regular storage (Figure 5).

Unlike the safe protocol's object, which keeps only the latest ``pw``/``w``
pair, the regular object records *every* value it receives from writers
in an indexed ``history``: ``history[tag] = <pw, w>``, where ``tag`` is
the write's ``(epoch, writer_id)`` tag (in the paper's single-writer
setting every tag is ``(ts, 0)`` and the index degenerates to the integer
timestamp).  On a PW for write ``tag'`` it provisionally records
``history[tag'] = <pw', nil>`` and back-fills the carried previous write's
complete tuple (PW messages carry the previous ``w``); on a W it
completes ``history[tag']``.

READ requests are answered with the history -- in full, or (Section 5.1)
only the suffix from the reader's cached tag ``from_ts`` onward, which is
the optimization experiment E6 quantifies.

In multi-writer systems stale-tagged write rounds are acknowledged (and
recorded -- history is a map, concurrent writers' entries coexist) so a
writer that lost the epoch race still terminates; single-writer systems
keep the figure's no-reply discipline for stale traffic.

As with the safe object, all of this state is kept *per register* in
lazily created slots, so one replica set serves many registers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

from ...automata.base import MultiRegisterObject, Outgoing, Sink
from ...config import SystemConfig
from ...messages import (Batch, EpochFence, HistoryEntry, HistoryReadAck,
                         LeaseProbe, LeaseProbeAck, Message,
                         Pw, ReadRequest, PwAck, TagQuery, TagQueryAck, W,
                         WriteAck)
from ...types import (DEFAULT_REGISTER, INITIAL_TSVAL, TAG0, ProcessId,
                      WriterTag, initial_write_tuple)

from functools import lru_cache


@lru_cache(maxsize=None)
def initial_history_entry(num_objects: int,
                          num_readers: int) -> HistoryEntry:
    """``history[tag0] = <pw_0, w_0>`` -- shared per system shape."""
    return HistoryEntry(pw=INITIAL_TSVAL,
                        w=initial_write_tuple(num_objects, num_readers))


@dataclass
class RegularSlot:
    """Per-register state of one regular object (Figure 5, lines 1-3)."""

    ts: int
    history: Dict[WriterTag, HistoryEntry]
    tsr: List[int]
    wid: int = 0
    #: memoized ``(len(history), max(history))`` -- tag arbitration asks
    #: for the top tag on every TagQuery, and history keys only ever
    #: accumulate, so the max is stable while the key count is.
    _top_key: Optional[Tuple[int, WriterTag]] = None

    @property
    def tag(self) -> WriterTag:
        return WriterTag(self.ts, self.wid)

    def top_tag(self) -> WriterTag:
        """``max(slot tag, max(history))`` with the history max cached."""
        cached = self._top_key
        n = len(self.history)
        if cached is None or cached[0] != n:
            top = max(self.history)
            self._top_key = (n, top)
        else:
            top = cached[1]
        if self.ts > top.epoch or (self.ts == top.epoch
                                   and self.wid > top.writer_id):
            return WriterTag(self.ts, self.wid)
        return top


class RegularObject(MultiRegisterObject):
    """Figure 5: ``code of object s_i`` for the regular storage."""

    def __init__(self, object_index: int, config: SystemConfig):
        super().__init__(object_index)
        self.config = config

    def _new_slot(self) -> RegularSlot:
        # Initialization (lines 1-3): history[tag0] = <pw_0, w_0>.  The
        # initial entry is immutable and identical for every slot of a
        # system shape, so one shared instance serves all of them.
        return RegularSlot(
            ts=0,
            history={TAG0: initial_history_entry(self.config.num_objects,
                                                 self.config.num_readers)},
            tsr=[0] * self.config.num_readers,
        )

    # -- single-register compatibility views ----------------------------
    @property
    def ts(self) -> int:
        return self._slot(DEFAULT_REGISTER).ts

    @property
    def history(self) -> Dict[WriterTag, HistoryEntry]:
        return self._slot(DEFAULT_REGISTER).history

    @property
    def tsr(self) -> List[int]:
        return self._slot(DEFAULT_REGISTER).tsr

    # ------------------------------------------------------------------
    def on_message(self, sender: ProcessId, message: Any) -> Outgoing:
        # Dispatch ordered by message frequency: two read rounds per READ
        # make ReadRequest the most common arrival.  The hot handlers
        # return a single reply message (always to the sender) so the
        # batched path can append it to a shared sink without the
        # per-part list/tuple wrapping.
        if isinstance(message, ReadRequest):
            reply = self._read_reply(message)
        elif isinstance(message, Pw):
            reply = self._pw_reply(message)
        elif isinstance(message, W):
            reply = self._w_reply(message)
        elif isinstance(message, TagQuery):
            reply = self._tag_reply(message)
        elif isinstance(message, LeaseProbe):
            reply = self._lease_reply(message)
        elif isinstance(message, EpochFence):
            return self._on_epoch_fence(sender, message)
        else:
            return []
        return [] if reply is None else [(sender, reply)]

    def handle_batch(self, sender: ProcessId, parts: Tuple[Any, ...],
                     sink: Sink) -> Outgoing:
        """Vector fast path: one decode, per-register dispatch in a tight
        loop, every reply coalesced into the caller's sink (one ack frame
        back to ``sender``)."""
        leftovers: Outgoing = []
        append = sink.append
        for message in parts:
            kind = message.__class__
            if kind is ReadRequest:
                reply = self._read_reply(message)
            elif kind is Pw:
                reply = self._pw_reply(message)
            elif kind is W:
                reply = self._w_reply(message)
            elif kind is TagQuery:
                reply = self._tag_reply(message)
            elif kind is LeaseProbe:
                reply = self._lease_reply(message)
            else:  # rare control traffic and subclass extensions
                for receiver, payload in self.on_message(sender, message) \
                        or []:
                    if receiver == sender and isinstance(payload, Message) \
                            and not isinstance(payload, Batch):
                        append(payload)
                    else:
                        leftovers.append((receiver, payload))
                continue
            if reply is not None:
                append(reply)
        return leftovers

    # -- MWMR tag discovery ----------------------------------------------
    def _tag_reply(self, message: TagQuery) -> TagQueryAck:
        slot = self._slot(message.register_id)
        top = slot.top_tag()
        return TagQueryAck(nonce=message.nonce,
                           object_index=self.object_index,
                           epoch=top.epoch, wid=top.writer_id,
                           register_id=message.register_id)

    # -- tag leases (fast reads) -----------------------------------------
    def _lease_reply(self, message: LeaseProbe) -> LeaseProbeAck:
        """One probe, one verdict: top tag, completeness, fence state.

        Read-only -- probes never touch ``slot.tsr`` or the history, so a
        fast read is invisible to the classic protocol's freshness
        bookkeeping and a probe storm cannot stale out concurrent classic
        rounds.
        """
        slot = self.slots.get(message.register_id)
        if slot is None:
            slot = self.slots[message.register_id] = self._new_slot()
        top = slot.top_tag()
        entry = slot.history.get(message.tag)
        fenced = bool(self.hard_fences or self.fences) and (
            message.register_id in self.hard_fences
            or message.register_id in self.fences)
        return LeaseProbeAck(
            nonce=message.nonce,
            object_index=self.object_index,
            epoch=top.epoch, wid=top.writer_id,
            holds=entry is not None and entry.w is not None,
            fenced=fenced,
            register_id=message.register_id)

    # -- lines 4-9 -------------------------------------------------------
    def _pw_reply(self, message: Pw) -> Optional[Message]:
        # Fence state short-circuit: both containers are empty unless a
        # reconfiguration ever touched this replica, so the common case
        # costs two truthiness checks.
        if ((self.fences or self.hard_fences)
                and self._fence_rejects(message.register_id, message.ts)):
            return self._fence_nack_msg(message.register_id,
                                        message.ts, message.wid)
        slot = self.slots.get(message.register_id)
        if slot is None:
            slot = self.slots[message.register_id] = self._new_slot()
        fresh = (message.ts > slot.ts
                 or (message.ts == slot.ts and message.wid > slot.wid))
        if fresh or self.config.is_multi_writer:
            # The tag via the (shared, cached) pw pair: one WriterTag per
            # broadcast instead of one per receiving object.  Honest
            # writers always agree; a forged frame whose pair disagrees
            # with its header falls back to the header tag, exactly as
            # before.
            tag = message.pw.tag
            if tag.epoch != message.ts or tag.writer_id != message.wid:
                tag = WriterTag(message.ts, message.wid)
            # Record the new pre-write and back-fill the previous write's
            # complete tuple carried by the PW message.  Never demote a
            # completed entry to a provisional one (a concurrent writer's
            # W may have landed first), and skip the back-fill when the
            # previous write is already complete here -- the common case
            # after that write's own W round.
            existing = slot.history.get(tag)
            if existing is None or existing.w is None:
                slot.history[tag] = HistoryEntry(pw=message.pw, w=None)
            prev_tag = message.w.tag
            prev = slot.history.get(prev_tag)
            if prev is None or prev.w is None:
                slot.history[prev_tag] = HistoryEntry(pw=message.w.tsval,
                                                      w=message.w)
            if fresh:
                slot.ts = message.ts
                slot.wid = message.wid
            return PwAck(ts=message.ts,
                         object_index=self.object_index,
                         tsr=tuple(slot.tsr),
                         register_id=message.register_id,
                         wid=message.wid)
        return None

    # -- lines 10-14 -----------------------------------------------------
    def _w_reply(self, message: W) -> Optional[Message]:
        if ((self.fences or self.hard_fences)
                and self._fence_rejects(message.register_id, message.ts)):
            return self._fence_nack_msg(message.register_id,
                                        message.ts, message.wid)
        slot = self.slots.get(message.register_id)
        if slot is None:
            slot = self.slots[message.register_id] = self._new_slot()
        fresh = (message.ts > slot.ts
                 or (message.ts == slot.ts and message.wid >= slot.wid))
        if fresh or self.config.is_multi_writer:
            if fresh:
                slot.ts = message.ts
                slot.wid = message.wid
            tag = message.pw.tag
            if tag.epoch != message.ts or tag.writer_id != message.wid:
                tag = WriterTag(message.ts, message.wid)
            slot.history[tag] = HistoryEntry(pw=message.pw, w=message.w)
            return WriteAck(ts=message.ts,
                            object_index=self.object_index,
                            register_id=message.register_id,
                            wid=message.wid)
        return None

    # -- lines 15-19 -----------------------------------------------------
    def _read_reply(self, message: ReadRequest
                    ) -> Optional[HistoryReadAck]:
        j = message.reader_index
        if not 0 <= j < self.config.num_readers:
            return None
        slot = self.slots.get(message.register_id)
        if slot is None:
            slot = self.slots[message.register_id] = self._new_slot()
        if message.tsr > slot.tsr[j]:
            slot.tsr[j] = message.tsr
            history = slot.history
            if message.from_ts is not None and message.from_ts > TAG0:
                # Section 5.1: ship only the suffix from the reader's
                # cached tag onwards (a TAG0 cache means "everything" --
                # skip the filter pass entirely).
                from_tag = message.from_ts
                history = {tag: entry for tag, entry in history.items()
                           if tag >= from_tag}
            # The ack freezes its own copy, insulating it from this
            # slot's future mutations (fast constructor: slot histories
            # are tag-keyed already, no normalization pass needed).
            return HistoryReadAck.from_tagged(
                round_index=message.round_index,
                tsr=slot.tsr[j],
                object_index=self.object_index,
                history=history,
                register_id=message.register_id,
            )
        return None

    # ------------------------------------------------------------------
    def describe_state(self) -> str:
        if not self.slots or set(self.slots) == {DEFAULT_REGISTER}:
            slot = self.slots.get(DEFAULT_REGISTER) or self._new_slot()
            return (f"s{self.object_index + 1}: ts={slot.ts}, "
                    f"|history|={len(slot.history)}, tsr={slot.tsr}")
        return (f"s{self.object_index + 1}: "
                + "; ".join(f"{rid}: ts={slot.ts}, "
                            f"|history|={len(slot.history)}"
                            for rid, slot in sorted(self.slots.items())))
