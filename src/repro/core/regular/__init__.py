"""The paper's regular storage (Section 5, Figures 2, 5, 6).

Optimal resilience (``S = 2t + b + 1``), regular semantics, and the same
2-round worst case for READ and WRITE as the safe protocol -- at the cost
of history-keeping objects.  Two flavours:

* :class:`RegularStorageProtocol` -- objects ship full histories
  (presentation version of Section 5);
* :class:`CachedRegularStorageProtocol` -- the Section 5.1 optimization:
  readers cache the last returned timestamp and objects ship only history
  suffixes.

The WRITE side is literally the safe protocol's writer (Figure 2 is shared
by both storages in the paper).
"""

from typing import Any, List

from ...config import SystemConfig
from ...protocols import REGULAR, StorageProtocol
from ..safe.writer import SafeWriterState, SafeWriteOperation
from .evidence import RegularEvidence
from .object import RegularObject
from .reader import RegularReaderState, RegularReadOperation


class RegularStorageProtocol(StorageProtocol):
    """Figures 2, 5, 6 with full-history READ acks."""

    name = "gv-regular"
    semantics = REGULAR
    write_rounds_worst_case = 2
    read_rounds_worst_case = 2
    requires_authentication = False
    readers_write = True
    #: reader states understand tag leases (service-tier opt-in); a
    #: fallback fast read costs the probe round on top of the classic
    #: bound, so the advertised worst case only holds classic-only.
    supports_fast_reads = True

    #: Section 5.1 switch; the subclass flips it.
    cached_reads = False

    def min_objects(self, t: int, b: int) -> int:
        return 2 * t + b + 1

    def make_objects(self, config: SystemConfig) -> List[RegularObject]:
        self.validate_config(config)
        return [RegularObject(i, config) for i in range(config.num_objects)]

    def make_writer_state(self, config: SystemConfig) -> SafeWriterState:
        return SafeWriterState(config)

    def make_reader_state(self, config: SystemConfig,
                          reader_index: int) -> RegularReaderState:
        return RegularReaderState(config, reader_index)

    def make_write(self, writer_state: SafeWriterState,
                   value: Any) -> SafeWriteOperation:
        return SafeWriteOperation(writer_state, value)

    def make_read(self, reader_state: RegularReaderState
                  ) -> RegularReadOperation:
        return RegularReadOperation(reader_state, cached=self.cached_reads)


class CachedRegularStorageProtocol(RegularStorageProtocol):
    """Section 5.1: suffix-shipping histories with reader-side caches."""

    name = "gv-regular-cached"
    cached_reads = True


__all__ = [
    "RegularStorageProtocol",
    "CachedRegularStorageProtocol",
    "RegularObject",
    "RegularReaderState",
    "RegularReadOperation",
    "RegularEvidence",
    "SafeWriterState",
    "SafeWriteOperation",
]
