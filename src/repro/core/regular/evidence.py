"""Reader-side evidence sets of the regular protocol (Figure 6, lines 1-5).

Mirrors :mod:`repro.core.safe.predicates` for the history-based protocol:

* candidates ``C`` are every write tuple appearing in a *first-round*
  history (line 20);
* ``invalid(c)`` (line 2) -- at least ``t + b + 1`` objects answered, in
  some round, with a history slot for ``c``'s timestamp that is missing or
  contradicts ``c``;
* ``safe(c)`` (line 3) -- at least ``b + 1`` objects answered, in some
  round, with a matching ``pw`` or ``w`` at ``c``'s slot;
* ``conflict`` (line 1) reuses the same accusation structure as the safe
  protocol, with accusers drawn from round-1 histories.
"""

from __future__ import annotations

from typing import Dict, Mapping, Optional, Set, Tuple

from ...messages import HistoryEntry
from ...types import TimestampValue, WriterTag, WriteTuple, as_tag

#: The "no opinion about this slot" entry; immutable, so one shared
#: instance serves every miss on the hot predicate path.
_EMPTY_ENTRY = HistoryEntry(pw=None, w=None)


class RegularEvidence:
    """Histories received per round, plus the Figure 6 predicates."""

    def __init__(self, elimination_threshold: int,
                 confirmation_threshold: int):
        self.elimination_threshold = elimination_threshold
        self.confirmation_threshold = confirmation_threshold
        #: history[rnd][i] -> {tag: HistoryEntry}; first ack per round wins
        self.round_histories: Dict[
            int, Dict[int, Mapping[WriterTag, HistoryEntry]]]
        self.round_histories = {1: {}, 2: {}}
        self._candidates: Set[WriteTuple] = set()
        # Predicate verdicts only change when evidence arrives, but the
        # reader evaluates them after every ack (and several times within
        # one step).  A generation counter bumped on ingestion keys cheap
        # memoization of the hot predicates.
        self._generation = 0
        self._voter_cache: Dict[Tuple[str, WriteTuple],
                                Tuple[int, Set[int]]] = {}
        self._candidates_cache: Tuple[int, Optional[Set[WriteTuple]]] = \
            (-1, None)
        self._accusers_cache: Tuple[int, Optional[Dict[WriteTuple,
                                                       Set[int]]]] = \
            (-1, None)

    # -- ingestion ---------------------------------------------------------
    def record(self, round_index: int, object_index: int,
               history: Mapping[WriterTag, HistoryEntry],
               normalized: bool = False) -> bool:
        """Store a round's history for an object (dedup: first ack wins).

        Round-1 histories contribute their non-nil ``w`` entries to the
        candidate set (line 20).  ``normalized=True`` is the reader's
        hot path: histories arriving through :class:`HistoryReadAck` are
        guaranteed tag-keyed and privately snapshotted by the ack's
        constructors, so the ack's own frozen dict is stored as-is.
        Direct callers (tests, tools) may pass legacy integer keys and
        mutable dicts and get the normalizing copy.
        """
        per_round = self.round_histories[round_index]
        if object_index in per_round:
            return False
        if not normalized:
            history = {as_tag(tag): entry
                       for tag, entry in history.items()}
        per_round[object_index] = history
        if round_index == 1:
            for entry in history.values():
                if entry.w is not None:
                    self._candidates.add(entry.w)
        self._generation += 1
        return True

    def responded_first(self) -> Set[int]:
        return set(self.round_histories[1])

    def responded_first_count(self) -> int:
        """``|Resp1|`` without materializing the set."""
        return len(self.round_histories[1])

    def first_round_accusers(self) -> Dict[WriteTuple, Set[int]]:
        """``FirstRW``-equivalent: who exhibited each candidate in round 1."""
        generation, cached = self._accusers_cache
        if generation == self._generation and cached is not None:
            return cached
        accusers: Dict[WriteTuple, Set[int]] = {}
        for i, history in self.round_histories[1].items():
            for entry in history.values():
                if entry.w is not None:
                    accusers.setdefault(entry.w, set()).add(i)
        self._accusers_cache = (self._generation, accusers)
        return accusers

    # -- per-object slot lookup -----------------------------------------------
    def _slot(self, round_index: int, object_index: int,
              tag: WriterTag) -> Optional[HistoryEntry]:
        history = self.round_histories[round_index].get(object_index)
        if history is None:
            return None  # no response in this round (no opinion)
        return history.get(tag, _EMPTY_ENTRY)

    # -- predicates --------------------------------------------------------------
    def invalid_voters(self, c: WriteTuple) -> Set[int]:
        """Objects counted by ``invalid(c)``: some round's response
        contradicts ``c`` at slot ``c.tag``."""
        cached = self._voter_cache.get(("invalid", c))
        if cached is not None and cached[0] == self._generation:
            return cached[1]
        voters: Set[int] = set()
        tag = c.tag
        tsval = c.tsval
        for per_round in (self.round_histories[1],
                          self.round_histories[2]):
            for i, history in per_round.items():
                entry = history.get(tag, _EMPTY_ENTRY)
                if entry.w is None or entry.pw != tsval or entry.w != c:
                    voters.add(i)
        self._voter_cache[("invalid", c)] = (self._generation, voters)
        return voters

    def is_invalid(self, c: WriteTuple) -> bool:
        return len(self.invalid_voters(c)) >= self.elimination_threshold

    def safe_voters(self, c: WriteTuple) -> Set[int]:
        """Objects counted by ``safe(c)``: a matching pw or w at the slot."""
        cached = self._voter_cache.get(("safe", c))
        if cached is not None and cached[0] == self._generation:
            return cached[1]
        voters: Set[int] = set()
        tag = c.tag
        tsval = c.tsval
        for per_round in (self.round_histories[1],
                          self.round_histories[2]):
            for i, history in per_round.items():
                entry = history.get(tag, _EMPTY_ENTRY)
                if entry.pw == tsval or entry.w == c:
                    voters.add(i)
        self._voter_cache[("safe", c)] = (self._generation, voters)
        return voters

    def is_safe(self, c: WriteTuple) -> bool:
        return len(self.safe_voters(c)) >= self.confirmation_threshold

    # -- candidate queries ----------------------------------------------------------
    def candidates(self) -> Set[WriteTuple]:
        """Current ``C``: round-1 candidates not (yet) invalid."""
        generation, cached = self._candidates_cache
        if generation == self._generation and cached is not None:
            return cached
        current = {c for c in self._candidates if not self.is_invalid(c)}
        self._candidates_cache = (self._generation, current)
        return current

    def candidates_empty(self) -> bool:
        return not self.candidates()

    def high_candidates(self) -> Set[WriteTuple]:
        current = self.candidates()
        if not current:
            return set()
        top = max(c.tag for c in current)
        return {c for c in current if c.tag == top}

    def returnable(self) -> Optional[WriteTuple]:
        """Line 14: a safe candidate with the highest timestamp, if any."""
        for c in self.high_candidates():
            if self.is_safe(c):
                return c
        return None
