"""Reader side of the regular storage (Figure 6) and its §5.1 optimization.

Control flow mirrors the safe reader -- two rounds, reader timestamps
written into the objects, conflict-free quorum to leave round 1 -- but the
evidence is richer: whole histories instead of latest values, with the
``invalid``/``safe`` predicates of :class:`~repro.core.regular.evidence.
RegularEvidence` deciding candidate fate.

Two reader flavours share the implementation:

* :class:`RegularReadOperation` (``cached=False``) ships full histories;
  the candidate set always contains the initial tuple ``w_0``, so the
  round-2 wait needs no empty-set escape hatch;
* the optimized reader (``cached=True``) sends the timestamp of the last
  value this reader returned, receives only history suffixes, and falls
  back to the cached value when the candidate set drains (Section 5.1).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Optional

from ...automata.base import ClientOperation, Outgoing, Sink
from ...config import SystemConfig
from ...errors import ProtocolError
from ...messages import HistoryReadAck, ReadRequest
from ...quorums import confirmation_threshold, elimination_threshold
from ...types import BOTTOM, TAG0, ProcessId, WriterTag, obj, reader
from ..safe.predicates import conflict_pairs, exists_conflict_free_quorum
from .evidence import RegularEvidence


@dataclass
class RegularReaderState:
    """Persistent per-reader variables: ``tsr'_j`` plus the §5.1 cache.

    ``cache_tag`` is the write tag of the last value this reader vouched
    for (``(ts, 0)`` in single-writer systems).
    """

    config: SystemConfig
    reader_index: int = 0
    tsr: int = 0
    cache_tag: WriterTag = TAG0
    cache_value: Any = BOTTOM

    @property
    def cache_ts(self) -> int:
        """Legacy view: the epoch of the cached tag."""
        return self.cache_tag.epoch

    def __post_init__(self) -> None:
        if not 0 <= self.reader_index < self.config.num_readers:
            raise ProtocolError(
                f"reader index {self.reader_index} out of range for "
                f"R={self.config.num_readers}")


class RegularReadOperation(ClientOperation):
    """One ``READ()`` of the regular storage (Figure 6, lines 7-27)."""

    kind = "READ"

    def __init__(self, state: RegularReaderState, cached: bool = False):
        super().__init__(reader(state.reader_index))
        self.state = state
        self.config = state.config
        self.reader_index = state.reader_index
        self.cached = cached
        self.evidence = RegularEvidence(
            elimination_threshold=elimination_threshold(self.config),
            confirmation_threshold=confirmation_threshold(self.config),
        )
        self.phase = 1
        self.tsr_first_round: int = 0
        #: history entries received, for the E6 message-size accounting
        self.history_entries_received = 0

    # ------------------------------------------------------------------
    def _from_ts(self) -> Optional[WriterTag]:
        return self.state.cache_tag if self.cached else None

    def start(self) -> Outgoing:
        self.state.tsr += 1
        self.tsr_first_round = self.state.tsr
        self.begin_round()
        request = ReadRequest(round_index=1, tsr=self.tsr_first_round,
                              reader_index=self.reader_index,
                              from_ts=self._from_ts(),
                              register_id=self.register_id)
        return [(obj(i), request) for i in range(self.config.num_objects)]

    # -- vector rounds (native) ------------------------------------------
    def start_vector(self, sink: Sink, leftovers: Outgoing) -> None:
        self.state.tsr += 1
        self.tsr_first_round = self.state.tsr
        self.begin_round()
        sink.append(ReadRequest(round_index=1, tsr=self.tsr_first_round,
                                reader_index=self.reader_index,
                                from_ts=self._from_ts(),
                                register_id=self.register_id))

    def absorb(self, sender: ProcessId, message: Any) -> None:
        """Record one history ack; the predicates run in advance()."""
        if (self.done or sender.role != "object"
                or message.__class__ is not HistoryReadAck
                or message.register_id != self.register_id):
            return
        if (self.phase == 1 and message.round_index == 1
                and message.tsr == self.tsr_first_round):
            if self.evidence.record(1, sender.index, message.history,
                                    normalized=True):
                self.history_entries_received += len(message.history)
        elif (self.phase == 2 and message.round_index == 2
                and message.tsr == self.tsr_first_round + 1):
            if self.evidence.record(2, sender.index, message.history,
                                    normalized=True):
                self.history_entries_received += len(message.history)

    def advance(self, sink: Sink, leftovers: Outgoing) -> None:
        """Evaluate the round predicates once per burst of acks.

        Burst absorption means the line-11 check may first run with more
        than a quorum of responders -- sound, because a conflict-free
        quorum among some responders remains one among more (conflicts
        are pairwise; extra responders only add more subsets to choose
        from), exactly as if the scheduler had interleaved the checks
        between individual ack deliveries.
        """
        if self.done:
            return
        if self.phase == 1:
            if self._round1_condition():
                sink.append(self._enter_round2())
                # The line-14 wait condition may already hold on round-1
                # evidence alone (uncontended runs).
                self._maybe_return()
            return
        self._maybe_return()

    # ------------------------------------------------------------------
    def on_message(self, sender: ProcessId, message: Any) -> Outgoing:
        if self.done or not sender.is_object:
            return []
        self.absorb(sender, message)
        sink: Sink = []
        outgoing: Outgoing = []
        self.advance(sink, outgoing)
        for broadcast in sink:
            outgoing.extend((obj(i), broadcast)
                            for i in range(self.config.num_objects))
        return outgoing

    # ------------------------------------------------------------------
    def _round1_condition(self) -> bool:
        # Below quorum responders no conflict-free quorum can exist; skip
        # the conflict analysis until enough acks are even in.
        quorum = self.config.quorum_size
        if self.evidence.responded_first_count() < quorum:
            return False
        pairs = conflict_pairs(
            candidates=self.evidence.candidates(),
            first_rw=self.evidence.first_round_accusers,
            reader_index=self.reader_index,
            tsr_first_round=self.tsr_first_round,
        )
        if not pairs:
            # No accusations in flight: every responder subset is
            # conflict-free and the quorum count already passed.
            return True
        return exists_conflict_free_quorum(
            responders=self.evidence.responded_first(),
            pairs=pairs,
            quorum=quorum,
        )

    def _enter_round2(self) -> ReadRequest:
        self.phase = 2
        self.state.tsr += 1
        if self.state.tsr != self.tsr_first_round + 1:
            raise ProtocolError(
                "reader timestamp advanced outside this operation")
        self.begin_round()
        return ReadRequest(round_index=2, tsr=self.state.tsr,
                           reader_index=self.reader_index,
                           from_ts=self._from_ts(),
                           register_id=self.register_id)

    def _maybe_return(self) -> None:
        if self.done:
            return
        candidate = self.evidence.returnable()
        if candidate is not None:
            value = candidate.tsval.value
            # Update the §5.1 cache with the freshest value we vouched for.
            if candidate.tag >= self.state.cache_tag:
                self.state.cache_tag = candidate.tag
                self.state.cache_value = value
            self.tag = candidate.tag
            self.complete(value)
            return
        if self.cached and self.evidence.candidates_empty():
            # Section 5.1: an empty candidate set under suffix shipping
            # means nothing newer than the cache was confirmed; the cached
            # value is still regular (case ts >= k of the proof).
            self.tag = self.state.cache_tag
            self.complete(self.state.cache_value)

    # ------------------------------------------------------------------
    def describe(self) -> str:
        mode = "cached" if self.cached else "full-history"
        return (f"READ#{self.operation_id} by r{self.reader_index + 1} "
                f"({mode}, tsrFR={self.tsr_first_round})")
