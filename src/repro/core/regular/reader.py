"""Reader side of the regular storage (Figure 6) and its §5.1 optimization.

Control flow mirrors the safe reader -- two rounds, reader timestamps
written into the objects, conflict-free quorum to leave round 1 -- but the
evidence is richer: whole histories instead of latest values, with the
``invalid``/``safe`` predicates of :class:`~repro.core.regular.evidence.
RegularEvidence` deciding candidate fate.

Two reader flavours share the implementation:

* :class:`RegularReadOperation` (``cached=False``) ships full histories;
  the candidate set always contains the initial tuple ``w_0``, so the
  round-2 wait needs no empty-set escape hatch;
* the optimized reader (``cached=True``) sends the timestamp of the last
  value this reader returned, receives only history suffixes, and falls
  back to the cached value when the candidate set drains (Section 5.1).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Optional

from ...automata.base import ClientOperation, Outgoing, Sink
from ...automata.rounds import LeaseValidation, TagLease
from ...config import SystemConfig
from ...errors import ProtocolError
from ...messages import HistoryReadAck, LeaseProbe, LeaseProbeAck, ReadRequest
from ...quorums import confirmation_threshold, elimination_threshold
from ...types import BOTTOM, TAG0, ProcessId, WriterTag, obj, reader
from ..safe.predicates import conflict_pairs, exists_conflict_free_quorum
from .evidence import RegularEvidence

#: Explicit phases of the unified read state machine.  The fast path is
#: phase 0; classic collection is phases 1-2; the atomic extension adds
#: phase 3 (write-back).  A read either starts at PHASE_PROBE (holding a
#: lease) and falls back into PHASE_ROUND1, or starts at PHASE_ROUND1
#: directly -- from there on the two paths are the same machine.
PHASE_PROBE = 0
PHASE_ROUND1 = 1
PHASE_ROUND2 = 2
PHASE_WRITE_BACK = 3


@dataclass
class RegularReaderState:
    """Persistent per-reader variables: ``tsr'_j`` plus the §5.1 cache.

    ``cache_tag`` is the write tag of the last value this reader vouched
    for (``(ts, 0)`` in single-writer systems).

    ``lease`` and ``fast_reads`` drive the contention-adaptive fast path:
    when ``fast_reads`` is enabled (service tier opt-in; the core library
    defaults off so figure-exact round counts stay put), completed reads
    and service-layer write acks grant a :class:`TagLease` here, and the
    next read attempts a single-round probe against it.
    """

    config: SystemConfig
    reader_index: int = 0
    tsr: int = 0
    cache_tag: WriterTag = TAG0
    cache_value: Any = BOTTOM
    fast_reads: bool = False
    lease: Optional[TagLease] = None
    #: lease invalidations (fences, reconfig flips, put_if misses) --
    #: surfaced through the host/store efficacy counters.
    lease_invalidations: int = 0

    @property
    def cache_ts(self) -> int:
        """Legacy view: the epoch of the cached tag."""
        return self.cache_tag.epoch

    def __post_init__(self) -> None:
        if not 0 <= self.reader_index < self.config.num_readers:
            raise ProtocolError(
                f"reader index {self.reader_index} out of range for "
                f"R={self.config.num_readers}")

    # -- tag leases ------------------------------------------------------
    def grant_lease(self, tag: Optional[WriterTag], value: Any) -> None:
        """Adopt certified evidence; no-op unless fast reads are on."""
        if not self.fast_reads or tag is None or tag == TAG0:
            return
        if self.lease is None:
            self.lease = TagLease(tag=tag, value=value)
        else:
            self.lease.refresh(tag, value)

    def invalidate_lease(self) -> None:
        """Drop the lease outright (fence observed, routing flip, stale
        conditional write): the next read runs the classic rounds and
        re-earns a lease from their evidence."""
        if self.lease is not None:
            self.lease = None
            self.lease_invalidations += 1

    def lease_to_probe(self) -> Optional[TagLease]:
        """The lease the next read should probe, if any (backoff-gated)."""
        lease = self.lease if self.fast_reads else None
        if lease is not None and lease.should_probe():
            return lease
        return None


class RegularReadOperation(ClientOperation):
    """One ``READ()`` of the regular storage (Figure 6, lines 7-27)."""

    kind = "READ"

    def __init__(self, state: RegularReaderState, cached: bool = False):
        super().__init__(reader(state.reader_index))
        self.state = state
        self.config = state.config
        self.reader_index = state.reader_index
        self.cached = cached
        self.evidence = RegularEvidence(
            elimination_threshold=elimination_threshold(self.config),
            confirmation_threshold=confirmation_threshold(self.config),
        )
        #: the lease this read probes, or None for a classic-only read.
        self.lease = state.lease_to_probe()
        self.validation: Optional[LeaseValidation] = None
        self.phase = PHASE_PROBE if self.lease is not None else PHASE_ROUND1
        self.tsr_first_round: int = 0
        #: fast-path efficacy flags, aggregated by the host counters.
        self.fast_attempted = self.lease is not None
        self.fast_hit = False
        self.fell_back = False
        #: history entries received, for the E6 message-size accounting
        self.history_entries_received = 0

    # ------------------------------------------------------------------
    def _from_ts(self) -> Optional[WriterTag]:
        return self.state.cache_tag if self.cached else None

    def start(self) -> Outgoing:
        sink: Sink = []
        leftovers: Outgoing = []
        self.start_vector(sink, leftovers)
        outgoing: Outgoing = []
        for broadcast in sink:
            outgoing.extend((obj(i), broadcast)
                            for i in range(self.config.num_objects))
        outgoing.extend(leftovers)
        return outgoing

    # -- vector rounds (native) ------------------------------------------
    def start_vector(self, sink: Sink, leftovers: Outgoing) -> None:
        if self.phase == PHASE_PROBE:
            sink.append(self._begin_probe())
        else:
            sink.append(self._begin_classic())

    def _begin_probe(self) -> LeaseProbe:
        """Phase 0: one broadcast validating the lease against a quorum."""
        self.state.tsr += 1
        self.begin_round()
        tag = self.lease.tag
        self.validation = LeaseValidation(
            nonce=self.state.tsr,
            quorum=self.config.quorum_size,
            confirmation_threshold=confirmation_threshold(self.config),
            lease_tag=tag)
        return LeaseProbe(nonce=self.state.tsr,
                          epoch=tag.epoch, wid=tag.writer_id,
                          reader_index=self.reader_index,
                          register_id=self.register_id)

    def _begin_classic(self) -> ReadRequest:
        """Enter phase 1 (fresh start or fallback from a refuted probe)."""
        self.phase = PHASE_ROUND1
        self.state.tsr += 1
        self.tsr_first_round = self.state.tsr
        self.begin_round()
        return ReadRequest(round_index=1, tsr=self.tsr_first_round,
                           reader_index=self.reader_index,
                           from_ts=self._from_ts(),
                           register_id=self.register_id)

    def absorb(self, sender: ProcessId, message: Any) -> None:
        """Record one ack; the predicates run in advance()."""
        if self.done or sender.role != "object":
            return
        kind = message.__class__
        if kind is LeaseProbeAck:
            if (self.phase == PHASE_PROBE
                    and message.register_id == self.register_id):
                self.validation.offer(sender.index, message.nonce, message)
            return
        if (kind is not HistoryReadAck
                or message.register_id != self.register_id):
            return
        if (self.phase == PHASE_ROUND1 and message.round_index == 1
                and message.tsr == self.tsr_first_round):
            if self.evidence.record(1, sender.index, message.history,
                                    normalized=True):
                self.history_entries_received += len(message.history)
        elif (self.phase == PHASE_ROUND2 and message.round_index == 2
                and message.tsr == self.tsr_first_round + 1):
            if self.evidence.record(2, sender.index, message.history,
                                    normalized=True):
                self.history_entries_received += len(message.history)

    def advance(self, sink: Sink, leftovers: Outgoing) -> None:
        """Evaluate the round predicates once per burst of acks.

        Burst absorption means the line-11 check may first run with more
        than a quorum of responders -- sound, because a conflict-free
        quorum among some responders remains one among more (conflicts
        are pairwise; extra responders only add more subsets to choose
        from), exactly as if the scheduler had interleaved the checks
        between individual ack deliveries.
        """
        if self.done:
            return
        if self.phase == PHASE_PROBE:
            self._advance_probe(sink)
            return
        if self.phase == PHASE_ROUND1:
            if self._round1_condition():
                sink.append(self._enter_round2())
                # The line-14 wait condition may already hold on round-1
                # evidence alone (uncontended runs).
                self._maybe_return()
            return
        self._maybe_return()

    def _advance_probe(self, sink: Sink) -> None:
        """Decide the probe: fast return, or fall back to phase 1."""
        validation = self.validation
        if not validation.decided():
            return
        lease = self.lease
        if validation.valid():
            lease.record_hit()
            if lease.tag >= self.state.cache_tag:
                self.state.cache_tag = lease.tag
                self.state.cache_value = lease.value
            self.fast_hit = True
            self.tag = lease.tag
            self.complete(lease.value)
            return
        # Refuted (newer tag, fence) or unconfirmed (healed/amnesiac
        # replicas below b+1 holders): fall back to the classic rounds.
        self.fell_back = True
        lease.record_fallback()
        if any(ack.fenced for ack in validation.collector.acks.values()):
            # A fence means the register is mid-handoff here; the lease
            # may point into a retired replica set, so drop it outright.
            self.state.invalidate_lease()
        sink.append(self._begin_classic())

    # ------------------------------------------------------------------
    def on_message(self, sender: ProcessId, message: Any) -> Outgoing:
        if self.done or not sender.is_object:
            return []
        self.absorb(sender, message)
        sink: Sink = []
        outgoing: Outgoing = []
        self.advance(sink, outgoing)
        for broadcast in sink:
            outgoing.extend((obj(i), broadcast)
                            for i in range(self.config.num_objects))
        return outgoing

    # ------------------------------------------------------------------
    def _round1_condition(self) -> bool:
        # Below quorum responders no conflict-free quorum can exist; skip
        # the conflict analysis until enough acks are even in.
        quorum = self.config.quorum_size
        if self.evidence.responded_first_count() < quorum:
            return False
        pairs = conflict_pairs(
            candidates=self.evidence.candidates(),
            first_rw=self.evidence.first_round_accusers,
            reader_index=self.reader_index,
            tsr_first_round=self.tsr_first_round,
        )
        if not pairs:
            # No accusations in flight: every responder subset is
            # conflict-free and the quorum count already passed.
            return True
        return exists_conflict_free_quorum(
            responders=self.evidence.responded_first(),
            pairs=pairs,
            quorum=quorum,
        )

    def _enter_round2(self) -> ReadRequest:
        self.phase = PHASE_ROUND2
        self.state.tsr += 1
        if self.state.tsr != self.tsr_first_round + 1:
            raise ProtocolError(
                "reader timestamp advanced outside this operation")
        self.begin_round()
        return ReadRequest(round_index=2, tsr=self.state.tsr,
                           reader_index=self.reader_index,
                           from_ts=self._from_ts(),
                           register_id=self.register_id)

    def _maybe_return(self) -> None:
        if self.done:
            return
        candidate = self.evidence.returnable()
        if candidate is not None:
            value = candidate.tsval.value
            # Update the §5.1 cache with the freshest value we vouched for.
            if candidate.tag >= self.state.cache_tag:
                self.state.cache_tag = candidate.tag
                self.state.cache_value = value
            self.tag = candidate.tag
            # A classic read's confirmed candidate is exactly the certified
            # evidence a lease needs (regular semantics here; the atomic
            # extension grants only after write-back).
            self.state.grant_lease(candidate.tag, value)
            self.complete(value)
            return
        if self.cached and self.evidence.candidates_empty():
            # Section 5.1: an empty candidate set under suffix shipping
            # means nothing newer than the cache was confirmed; the cached
            # value is still regular (case ts >= k of the proof).
            self.tag = self.state.cache_tag
            self.complete(self.state.cache_value)

    # ------------------------------------------------------------------
    def describe(self) -> str:
        mode = "cached" if self.cached else "full-history"
        return (f"READ#{self.operation_id} by r{self.reader_index + 1} "
                f"({mode}, tsrFR={self.tsr_first_round})")
