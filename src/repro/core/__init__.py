"""The paper's contributions: safe storage, regular storage, lower bound."""
