"""State-forging Byzantine objects used by the lower-bound driver.

The Proposition 1 proof makes malicious objects "forge their state to σ"
-- behave toward the reader exactly as if their state were one captured in
a *different* partial run.  :class:`ReplayResponder` implements that move
operationally: it records the acknowledgment payloads the honest object
sent in the reference run and replays them verbatim, one batch per
incoming READ request, while serving the write protocol honestly (the
writer must not be able to distinguish the runs either).
"""

from __future__ import annotations

from typing import Any, List, Sequence

from ...automata.base import ObjectAutomaton, Outgoing
from ...messages import ReadRequest
from ...types import ProcessId


class ReplayResponder(ObjectAutomaton):
    """Replays recorded read acks; handles writer traffic honestly."""

    def __init__(self, inner: ObjectAutomaton,
                 recorded_acks: Sequence[Any]):
        super().__init__(inner.object_index)
        self.inner = inner
        self._recorded: List[Any] = list(recorded_acks)
        self._cursor = 0
        self.replayed = 0

    def on_message(self, sender: ProcessId, message: Any) -> Outgoing:
        if isinstance(message, ReadRequest):
            # Keep the honest automaton's clock in sync (it must still
            # accept later requests if the recording runs out)...
            self.inner.on_message(sender, message)
            # ...but answer from the recording: the forged state σ.
            if self._cursor < len(self._recorded):
                payload = self._recorded[self._cursor]
                self._cursor += 1
                self.replayed += 1
                return [(sender, payload)]
            return []
        return self.inner.on_message(sender, message)
