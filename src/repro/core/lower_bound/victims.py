"""Fast-READ storage protocols for the lower-bound adversary to attack.

Proposition 1 says *every* fast-READ implementation with ``S <= 2t + 2b``
objects violates safety.  To demonstrate the proof mechanically we need
concrete victims: plausible one-round-read protocols that a practitioner
might actually write.  All three share the same trivial object (latest
timestamp-value pair) and one-round writer, differing only in how the
reader condenses its ``S - t`` acknowledgments into a return value:

* :data:`RULE_HIGHEST_TS` -- trust the highest timestamp seen (optimistic;
  killed in *run5*: a Byzantine block forges a high-timestamp value and
  the read returns a value that was never written);
* :data:`RULE_MAJORITY` -- plurality vote (killed in *run4*: the stale
  majority out-votes the fresh value and the read misses a completed
  write);
* :data:`RULE_THRESHOLD` -- highest timestamp with ``>= b + 1`` identical
  confirmations, else ``⊥`` (the textbook Byzantine-quorum rule; killed in
  *run4* at ``S = 2t + 2b``, yet **provably safe at** ``S = 2t + 2b + 1``,
  which is exactly the tightness frontier of the proposition).

The writer is single-round on purpose: the lower bound is independent of
write complexity, and the driver verifies the violation regardless.
"""

from __future__ import annotations

from collections import Counter
from typing import Any, Dict, List, Optional, Tuple

from ...automata.base import ClientOperation, ObjectAutomaton, Outgoing
from ...config import SystemConfig
from ...errors import ProtocolError
from ...messages import ReadAck, ReadRequest, W, WriteAck
from ...protocols import SAFE, StorageProtocol
from ...types import (BOTTOM, INITIAL_TSVAL, ProcessId, TimestampValue,
                      TsrArray, WRITER, WriteTuple, _Bottom, obj, reader)

RULE_HIGHEST_TS = "highest-ts"
RULE_MAJORITY = "majority"
RULE_THRESHOLD = "threshold"

ALL_RULES = (RULE_HIGHEST_TS, RULE_MAJORITY, RULE_THRESHOLD)


class FastObject(ObjectAutomaton):
    """Latest timestamp-value pair; answers reads in one hop."""

    def __init__(self, object_index: int, config: SystemConfig):
        super().__init__(object_index)
        self.config = config
        self.tsval: TimestampValue = INITIAL_TSVAL

    def on_message(self, sender: ProcessId, message: Any) -> Outgoing:
        if isinstance(message, W):
            if message.ts > self.tsval.ts:
                self.tsval = message.pw
            return [(sender, WriteAck(ts=message.ts,
                                      object_index=self.object_index))]
        if isinstance(message, ReadRequest):
            w = WriteTuple(self.tsval, TsrArray.empty(
                self.config.num_objects, self.config.num_readers))
            return [(sender, ReadAck(round_index=message.round_index,
                                     tsr=message.tsr,
                                     object_index=self.object_index,
                                     pw=self.tsval, w=w))]
        return []


class FastWriterState:
    def __init__(self, config: SystemConfig):
        self.config = config
        self.ts = 0


class FastWriteOperation(ClientOperation):
    """One-round write: install <ts, v>, wait for ``S - t`` acks."""

    kind = "WRITE"

    def __init__(self, state: FastWriterState, value: Any):
        super().__init__(WRITER)
        if isinstance(value, _Bottom):
            raise ProtocolError("⊥ is not a valid input value for WRITE")
        self.state = state
        self.config = state.config
        self.value = value
        self.ts = 0
        self._ackers: set = set()

    def start(self) -> Outgoing:
        self.state.ts += 1
        self.ts = self.state.ts
        pw = TimestampValue(self.ts, self.value)
        w = WriteTuple(pw, TsrArray.empty(self.config.num_objects,
                                          self.config.num_readers))
        self.begin_round()
        message = W(ts=self.ts, pw=pw, w=w)
        return [(obj(i), message) for i in range(self.config.num_objects)]

    def on_message(self, sender: ProcessId, message: Any) -> Outgoing:
        if self.done or not isinstance(message, WriteAck):
            return []
        if message.ts != self.ts:
            return []
        self._ackers.add(sender.index)
        if len(self._ackers) >= self.config.quorum_size:
            return self.complete("OK")
        return []


class FastReaderState:
    def __init__(self, config: SystemConfig, reader_index: int):
        self.config = config
        self.reader_index = reader_index
        self.tsr = 0


class FastReadOperation(ClientOperation):
    """One-round read: collect ``S - t`` acks, condense with ``rule``."""

    kind = "READ"

    def __init__(self, state: FastReaderState, rule: str):
        super().__init__(reader(state.reader_index))
        if rule not in ALL_RULES:
            raise ProtocolError(f"unknown selection rule {rule!r}")
        self.state = state
        self.config = state.config
        self.rule = rule
        self.tsr = 0
        self._acks: Dict[int, TimestampValue] = {}

    def start(self) -> Outgoing:
        self.state.tsr += 1
        self.tsr = self.state.tsr
        self.begin_round()
        request = ReadRequest(round_index=1, tsr=self.tsr,
                              reader_index=self.state.reader_index)
        return [(obj(i), request) for i in range(self.config.num_objects)]

    def on_message(self, sender: ProcessId, message: Any) -> Outgoing:
        if self.done or not isinstance(message, ReadAck):
            return []
        if message.tsr != self.tsr or sender.index in self._acks:
            return []
        self._acks[sender.index] = message.pw
        if len(self._acks) >= self.config.quorum_size:
            return self.complete(self._select())
        return []

    # -- selection rules ----------------------------------------------------
    def _select(self) -> Any:
        pairs = list(self._acks.values())
        if self.rule == RULE_HIGHEST_TS:
            best = max(pairs, key=lambda p: p.ts)
            return best.value
        if self.rule == RULE_MAJORITY:
            counts = Counter((p.ts, repr(p.value)) for p in pairs)
            # plurality; ties broken toward the higher timestamp
            best_key = max(counts,
                           key=lambda key: (counts[key], key[0]))
            for p in pairs:
                if (p.ts, repr(p.value)) == best_key:
                    return p.value
        if self.rule == RULE_THRESHOLD:
            counts = Counter(pairs)
            confirmed = [p for p, n in counts.items()
                         if n >= self.config.b + 1]
            if not confirmed:
                return BOTTOM
            return max(confirmed, key=lambda p: p.ts).value
        raise ProtocolError(f"unhandled rule {self.rule!r}")


class FastReadProtocol(StorageProtocol):
    """A 1-round-read / 1-round-write protocol, parameterized by rule."""

    semantics = SAFE  # *claimed*; Proposition 1 is about breaking this
    write_rounds_worst_case = 1
    read_rounds_worst_case = 1
    requires_authentication = False
    readers_write = False

    def __init__(self, rule: str = RULE_THRESHOLD):
        if rule not in ALL_RULES:
            raise ProtocolError(f"unknown selection rule {rule!r}")
        self.rule = rule
        self.name = f"fast-read[{rule}]"

    def min_objects(self, t: int, b: int) -> int:
        # Any meaningful quorum system needs overlapping read/write quorums.
        return 2 * t + 1

    def make_objects(self, config: SystemConfig) -> List[FastObject]:
        self.validate_config(config)
        return [FastObject(i, config) for i in range(config.num_objects)]

    def make_writer_state(self, config: SystemConfig) -> FastWriterState:
        return FastWriterState(config)

    def make_reader_state(self, config: SystemConfig,
                          reader_index: int) -> FastReaderState:
        return FastReaderState(config, reader_index)

    def make_write(self, writer_state: FastWriterState,
                   value: Any) -> FastWriteOperation:
        return FastWriteOperation(writer_state, value)

    def make_read(self, reader_state: FastReaderState) -> FastReadOperation:
        return FastReadOperation(reader_state, self.rule)
