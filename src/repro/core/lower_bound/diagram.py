"""ASCII rendering of Figure 1: the block diagrams of runs 1-5.

The paper depicts each run as a grid -- one row per block (T1, B2, T2,
B1), one column per round of each operation -- drawing a rectangle where a
block received and answered the round's message.  :func:`figure1` renders
the same grids for a given ``(t, b)``, with the state annotations (σ0, σ1,
σ2), crash/malice markers, and the per-run verdicts; the experiment E1
prints it next to the mechanized driver's transcript.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ...config import SystemConfig
from .blocks import BlockPartition

#: Row order matches the paper's figure.
ROW_ORDER = ("T1", "B2", "T2", "B1")

#: Cell glyphs.
RECV = "[##]"   # block receives the round's message and replies
SKIP = " .. "   # round skips the block (message in transit / never sent)
CRASH = " XX "  # block crashed (run1's T1, run''2's T2)
BYZ = " @@ "    # block is malicious in this run


def _grid(columns: List[str], rows: Dict[str, List[str]],
          annotations: Dict[str, str]) -> List[str]:
    """Format one run's grid."""
    header = "        " + " ".join(f"{c:^6}" for c in columns)
    lines = [header]
    for name in ROW_ORDER:
        cells = " ".join(f"{cell:^6}" for cell in rows[name])
        note = annotations.get(name, "")
        lines.append(f"  {name:<4}  {cells}  {note}")
    return lines


def _run1() -> List[str]:
    columns = ["rd1:1"]
    rows = {"T1": [CRASH], "B2": [SKIP], "T2": [SKIP], "B1": [RECV]}
    notes = {"B1": "σ0 -> σ1 (ack in transit)", "T1": "crashes at start"}
    lines = ["run1: READ rd1 invoked; skips B2, T1, T2; reader crashes"]
    lines += _grid(columns, rows, notes)
    return lines


def _run2(write_rounds: int) -> List[str]:
    columns = ["rd1:1"] + [f"wr1:{k}" for k in range(1, write_rounds + 1)]
    w = [RECV] * write_rounds
    rows = {
        "T1": [CRASH] + [SKIP] * write_rounds,
        "B2": [SKIP] + list(w),
        "T2": [SKIP] + list(w),
        "B1": [RECV] + list(w),
    }
    notes = {"B2": "σ0 -> σ2 at t1", "B1": "σ1"}
    lines = ["run2: extends run1; WRITE(v1) completes, skipping T1"]
    lines += _grid(columns, rows, notes)
    return lines


def _run3(write_rounds: int) -> List[str]:
    columns = ["rd1:1"] + [f"wr1:{k}" for k in range(1, write_rounds + 1)]
    w = [RECV] * write_rounds
    rows = {
        "T1": [RECV] + [SKIP] * write_rounds,
        "B2": [RECV] + list(w),
        "T2": [SKIP] + list(w),
        "B1": [RECV] + list(w),
    }
    notes = {
        "T1": "σ0 (write msgs in transit)",
        "B2": "answers rd1 from σ2",
        "T2": "rd1 msgs in transit",
        "B1": "answered rd1 from σ0/σ1",
    }
    lines = ["run3: all objects correct; rd1 returns v_R from acks of "
             "B1, B2, T1"]
    lines += _grid(columns, rows, notes)
    return lines


def _run4(write_rounds: int) -> List[str]:
    columns = [f"wr1:{k}" for k in range(1, write_rounds + 1)] + ["rd1:1"]
    w = [RECV] * write_rounds
    rows = {
        "T1": [SKIP] * write_rounds + [RECV],
        "B2": list(w) + [RECV],
        "T2": list(w) + [SKIP],
        "B1": list(w) + [BYZ],
    }
    notes = {
        "B1": "malicious: forges σ1, answers rd1 as if pre-write",
        "T1": "σ0 (write msgs in transit)",
        "T2": "rd1 msgs in transit",
    }
    lines = ["run4: WRITE(v1) precedes rd1; B1 malicious; safety demands "
             "rd1 = v1; indistinguishable from run3 => v_R = v1"]
    lines += _grid(columns, rows, notes)
    return lines


def _run5() -> List[str]:
    columns = ["rd1:1"]
    rows = {"T1": [RECV], "B2": [BYZ], "T2": [SKIP], "B1": [RECV]}
    notes = {
        "B2": "malicious: forges σ2, answers rd1 as if v1 were written",
        "T2": "rd1 msgs in transit",
        "T1": "σ0",
        "B1": "σ0 -> σ1",
    }
    lines = ["run5: wr1 never invoked; B2 malicious; safety demands "
             "rd1 = ⊥; indistinguishable from run4 => rd1 = v_R = v1. "
             "CONTRADICTION"]
    lines += _grid(columns, rows, notes)
    return lines


def figure1(t: int = 1, b: int = 1, write_rounds: int = 2,
            config: Optional[SystemConfig] = None) -> str:
    """Render Figure 1 for the given thresholds.

    ``write_rounds`` is the victim protocol's write complexity ``k``; the
    construction is independent of it, which the parameterization makes
    visible.
    """
    if config is None:
        config = SystemConfig.at_impossibility_threshold(t, b)
    partition = BlockPartition.for_config(config)
    lines: List[str] = [
        f"Figure 1 -- runs of the Proposition 1 proof "
        f"(S={config.num_objects} = 2t+2b, t={t}, b={b})",
        f"blocks: {partition.describe()}",
        f"legend: {RECV} block receives & replies   {SKIP} skipped/"
        f"in transit   {CRASH} crashed   {BYZ} malicious",
        "",
    ]
    for block in (_run1(), _run2(write_rounds), _run3(write_rounds),
                  _run4(write_rounds), _run5()):
        lines.extend(block)
        lines.append("")
    return "\n".join(lines)
