"""The block partition {T1, T2, B1, B2} of the Proposition 1 proof.

The proof partitions the ``S <= 2t + 2b`` base objects into four blocks:
``T1`` and ``T2`` of size exactly ``t`` (candidates for crashing /
being slow), and ``B1``, ``B2`` of size between 1 and ``b`` (candidates
for Byzantine corruption).  At the impossibility threshold ``S = 2t + 2b``
the Byzantine blocks have size exactly ``b``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from ...config import SystemConfig
from ...errors import ConfigurationError
from ...types import ProcessId, obj


@dataclass(frozen=True)
class BlockPartition:
    """Index sets of the four proof blocks."""

    t1: List[int]
    t2: List[int]
    b1: List[int]
    b2: List[int]

    @classmethod
    def for_config(cls, config: SystemConfig) -> "BlockPartition":
        t, b, S = config.t, config.b, config.num_objects
        if b < 1:
            raise ConfigurationError(
                "the lower bound needs b >= 1 (with b = 0 fast reads exist)")
        if S > 2 * t + 2 * b:
            raise ConfigurationError(
                f"S={S} exceeds 2t+2b={2 * t + 2 * b}: Proposition 1 does "
                "not apply (fast reads are possible)")
        if S < 2 * t + 2:
            raise ConfigurationError(
                f"S={S} < 2t+2: the proof needs non-empty B1 and B2 "
                "(the optimal-resilience bound already forces S >= 2t+b+1)")
        # Sizes: |T1| = |T2| = t; the rest split between B1 and B2, each
        # capped at b and at least 1.
        rest = S - 2 * t
        size_b1 = min(b, rest - 1)
        size_b1 = max(size_b1, 1)
        size_b2 = rest - size_b1
        if not (1 <= size_b2 <= b):
            raise ConfigurationError(
                f"cannot split {rest} non-T objects into 1..{b} + 1..{b}")
        cursor = 0

        def take(n: int) -> List[int]:
            nonlocal cursor
            block = list(range(cursor, cursor + n))
            cursor += n
            return block

        return cls(t1=take(t), t2=take(t), b1=take(size_b1),
                   b2=take(size_b2))

    # -- helpers ----------------------------------------------------------
    def pids(self, block: List[int]) -> List[ProcessId]:
        return [obj(i) for i in block]

    @property
    def all_blocks(self) -> List[List[int]]:
        return [self.t1, self.t2, self.b1, self.b2]

    def block_name(self, index: int) -> str:
        for name, block in (("T1", self.t1), ("T2", self.t2),
                            ("B1", self.b1), ("B2", self.b2)):
            if index in block:
                return name
        raise KeyError(index)

    def describe(self) -> str:
        def fmt(block: List[int]) -> str:
            return "{" + ",".join(f"s{i + 1}" for i in block) + "}"

        return (f"T1={fmt(self.t1)} T2={fmt(self.t2)} "
                f"B1={fmt(self.b1)} B2={fmt(self.b2)}")
