"""The mechanized Proposition 1 adversary (Section 3, Figure 1).

Given *any* storage protocol instantiated with ``S <= 2t + 2b`` base
objects, the driver executes the five-run indistinguishability argument of
the proof **against the protocol's real code**:

* **run1** -- the reader invokes READ ``rd1``; only block ``B1`` receives
  the request and answers (acks held in transit).
* **run2** -- extends run1: the writer completes ``WRITE(v1)`` while all
  writer messages to ``T1`` stay in transit (the write *skips* ``T1``).
* **run3** -- the read continues: ``T1`` and ``B2`` now receive the (old)
  read request and answer; every object-to-reader ack is released except
  ``T2``'s traffic, which stays in transit.  A *fast* read must return
  after these ``S - t`` acks; call its value ``v_R``.
* **run4** -- a fresh system where ``WRITE(v1)`` fully precedes the READ,
  but ``B1`` is malicious and replays its run1 (pre-write) acks.  The
  reader receives byte-identical information to run3, so a deterministic
  reader returns ``v_R`` -- which safety requires to be ``v1``.
* **run5** -- a fresh system where *no write ever happens*, but ``B2`` is
  malicious and replays its run3 (post-write) acks.  Again byte-identical
  to run3/run4 from the reader's seat, so the read returns ``v_R`` -- which
  safety requires to be ``⊥``.

Since ``v1 != ⊥``, any protocol whose reads complete in all three staged
runs violates safety in run4 or run5; a protocol that avoids violation can
only do so by *not completing* some read fast (the driver reports which
run blocked).  Both outcomes are exactly Proposition 1.

The driver also *verifies* the indistinguishability claims rather than
assuming them: it checks that run4 and run5 deliver the reader the same
acknowledgment multiset as run3 and that the returned values match.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from ...config import SystemConfig
from ...errors import ConfigurationError
from ...protocols import StorageProtocol
from ...sim import tracing
from ...sim.schedulers import FifoScheduler
from ...system import StorageSystem
from ...types import BOTTOM, ProcessId, WRITER, _Bottom, obj, reader
from .blocks import BlockPartition
from .replay import ReplayResponder

#: Sentinel result for a read that never completed under the schedule.
STALLED = "<read did not complete fast>"


@dataclass
class RunOutcome:
    """What one staged run produced."""

    name: str
    completed: bool
    value: Any = None
    rounds_used: int = 0
    acks_to_reader: List[str] = field(default_factory=list)

    def describe(self) -> str:
        if not self.completed:
            return f"{self.name}: READ blocked (not fast under this schedule)"
        return (f"{self.name}: READ returned {self.value!r} "
                f"after {self.rounds_used} round(s)")


@dataclass
class LowerBoundReport:
    """Verdict of the five-run construction against one protocol."""

    protocol_name: str
    config: SystemConfig
    partition: BlockPartition
    written_value: Any
    runs: Dict[str, RunOutcome] = field(default_factory=dict)
    violated: bool = False
    violation_run: Optional[str] = None
    survived_by_blocking: bool = False
    blocked_run: Optional[str] = None
    indistinguishable: bool = True
    notes: List[str] = field(default_factory=list)

    @property
    def v_r(self) -> Any:
        run3 = self.runs.get("run3")
        return run3.value if run3 and run3.completed else STALLED

    def render(self) -> str:
        lines = [
            f"Lower-bound construction vs {self.protocol_name} "
            f"(S={self.config.num_objects}, t={self.config.t}, "
            f"b={self.config.b})",
            f"  blocks: {self.partition.describe()}",
        ]
        for name in ("run3", "run4", "run5"):
            if name in self.runs:
                lines.append("  " + self.runs[name].describe())
        if self.violated:
            lines.append(
                f"  => SAFETY VIOLATED in {self.violation_run}: "
                + (f"read after WRITE({self.written_value!r}) returned "
                   f"{self.runs['run4'].value!r}"
                   if self.violation_run == "run4" else
                   f"read with no WRITE invoked returned "
                   f"{self.runs['run5'].value!r} != ⊥"))
        elif self.survived_by_blocking:
            lines.append(
                f"  => protocol survived: READ in {self.blocked_run} did "
                "not complete fast (it is not a fast-READ implementation)")
        for note in self.notes:
            lines.append(f"  note: {note}")
        return "\n".join(lines)


class LowerBoundDriver:
    """Stages run1..run5 of the Proposition 1 proof."""

    def __init__(self, protocol_factory, config: SystemConfig,
                 written_value: Any = "v1", max_steps: int = 200_000,
                 extra_hold=None, record_filter=None):
        """``protocol_factory``: zero-argument callable returning a fresh
        :class:`StorageProtocol` (each staged system needs pristine
        protocol state).

        ``extra_hold``: optional payload predicate; matching messages stay
        in transit in *every* staged run.  The server-centric experiment
        (Section 6) uses it to keep unsolicited pushes in transit, which is
        how the asynchronous adversary treats them in the extended proof.

        ``record_filter``: optional payload predicate restricting which of
        the reference run's object-to-reader sends are replayed as
        forgeries (defaults to all; server-centric runs exclude pushes,
        since held pushes were never part of the reader's view).
        """
        self.protocol_factory = protocol_factory
        self.config = config
        self.partition = BlockPartition.for_config(config)
        self.written_value = written_value
        self.max_steps = max_steps
        self.extra_hold = extra_hold
        self.record_filter = record_filter or (lambda payload: True)

    # ------------------------------------------------------------------
    def execute(self) -> LowerBoundReport:
        protocol = self.protocol_factory()
        report = LowerBoundReport(
            protocol_name=protocol.name,
            config=self.config,
            partition=self.partition,
            written_value=self.written_value,
        )
        recorded = self._phase_a(protocol, report)
        if report.survived_by_blocking:
            return report
        self._phase_b(report, recorded)
        if report.survived_by_blocking:
            return report
        self._phase_c(report, recorded)
        if report.survived_by_blocking:
            return report
        self._verdict(report)
        return report

    # ------------------------------------------------------------------
    # helpers
    # ------------------------------------------------------------------
    def _fresh_system(self) -> StorageSystem:
        system = StorageSystem(self.protocol_factory(), self.config,
                               scheduler=FifoScheduler())
        self._install_extra_hold(system)
        return system

    def _install_extra_hold(self, system: StorageSystem) -> None:
        if self.extra_hold is None:
            return
        predicate = self.extra_hold
        system.kernel.network.hold(
            "extra", lambda env: predicate(env.payload))

    def _hold_t2_bidirectional(self, system: StorageSystem,
                               tag: str) -> None:
        """All traffic between the reader and T2 stays in transit.

        In the data-centric model T2 only ever answers reader requests, so
        holding the reader->T2 direction suffices; in the server-centric
        model T2 may push, hence both directions."""
        rpid = reader(0)
        t2 = {obj(i) for i in self.partition.t2}

        def predicate(env) -> bool:
            if env.sender == rpid and env.receiver in t2:
                return True
            return env.sender in t2 and env.receiver == rpid

        system.kernel.network.hold(tag, predicate)

    def _hold_links(self, system: StorageSystem, tag: str,
                    sender: Optional[ProcessId],
                    receiver_indices: List[int]) -> None:
        receivers = {obj(i) for i in receiver_indices}

        def predicate(env) -> bool:
            if sender is not None and env.sender != sender:
                return False
            return env.receiver in receivers

        system.kernel.network.hold(tag, predicate)

    def _hold_reader_inbound(self, system: StorageSystem, tag: str,
                             from_indices: Optional[List[int]] = None
                             ) -> None:
        rpid = reader(0)
        senders = (None if from_indices is None
                   else {obj(i) for i in from_indices})

        def predicate(env) -> bool:
            if env.receiver != rpid:
                return False
            return senders is None or env.sender in senders

        system.kernel.network.hold(tag, predicate)

    def _reader_ack_log(self, system: StorageSystem) -> List[str]:
        rpid = reader(0)
        return [
            f"{event.peer!r}:{event.detail}"
            for event in system.kernel.trace.events(kind=tracing.DELIVER,
                                                    process=rpid)
        ]

    def _object_sends_to_reader(self, system: StorageSystem,
                                index: int) -> List[Any]:
        rpid = reader(0)
        return [
            event.payload
            for event in system.kernel.trace.events(
                kind=tracing.SEND, process=obj(index),
                predicate=lambda e: e.peer == rpid)
            if self.record_filter(event.payload)
        ]

    # ------------------------------------------------------------------
    # Phase A: run1 -> run2 -> run3 on one system
    # ------------------------------------------------------------------
    def _phase_a(self, protocol: StorageProtocol,
                 report: LowerBoundReport) -> Dict[int, List[Any]]:
        part = self.partition
        system = StorageSystem(protocol, self.config,
                               scheduler=FifoScheduler())
        self._install_extra_hold(system)
        rpid = reader(0)
        net = system.kernel.network

        # run1: rd1 skips B2, T1, T2 -- their copies of the read request
        # stay in transit; every object->reader ack is held too.
        self._hold_links(system, "rd->T1", rpid, part.t1)
        self._hold_t2_bidirectional(system, "rd<->T2")
        self._hold_links(system, "rd->B2", rpid, part.b2)
        self._hold_reader_inbound(system, "acks->r1")

        rd1 = system.invoke_read(0)
        system.kernel.run_to_quiescence(self.max_steps)  # B1 answers; held

        # run2: WRITE(v1) completes while skipping T1.
        self._hold_links(system, "w->T1", WRITER, part.t1)
        wr1 = system.invoke_write(self.written_value)
        system.kernel.run_until(lambda: wr1.done, self.max_steps)

        # run3: T1 and B2 receive the old read request and answer from
        # their current states (σ0 and σ2); all acks except T2's reach the
        # reader.  T2's traffic stays in transit throughout.
        net.release("rd->T1")
        net.release("rd->B2")
        system.kernel.run_to_quiescence(self.max_steps)
        net.release("acks->r1")
        system.kernel.run_to_quiescence(self.max_steps)

        outcome = RunOutcome(
            name="run3",
            completed=rd1.done,
            value=rd1.result if rd1.done else None,
            rounds_used=rd1.rounds_used,
            acks_to_reader=self._reader_ack_log(system),
        )
        report.runs["run3"] = outcome
        if not rd1.done:
            report.survived_by_blocking = True
            report.blocked_run = "run3"
            return {}

        # Record every ack each B1/B2 object sent to the reader: the σ1
        # and σ2 forgeries of runs 4 and 5.
        recorded: Dict[int, List[Any]] = {}
        for i in part.b1 + part.b2:
            recorded[i] = self._object_sends_to_reader(system, i)
        return recorded

    # ------------------------------------------------------------------
    # Phase B: run4 -- write precedes read; B1 forges σ1.
    # ------------------------------------------------------------------
    def _phase_b(self, report: LowerBoundReport,
                 recorded: Dict[int, List[Any]]) -> None:
        part = self.partition
        system = self._fresh_system()
        for i in part.b1:
            honest = system.kernel.object_automaton(obj(i))
            system.kernel.make_byzantine(
                obj(i), ReplayResponder(honest, recorded.get(i, [])),
                note="forges σ1 (replays pre-write acks)")

        self._hold_links(system, "w->T1", WRITER, part.t1)
        wr1 = system.invoke_write(self.written_value)
        system.kernel.run_until(lambda: wr1.done, self.max_steps)

        # rd1 invoked strictly after wr1 completed; T2 stays in transit.
        self._hold_t2_bidirectional(system, "rd<->T2")
        rd1 = system.invoke_read(0)
        system.kernel.run_to_quiescence(self.max_steps)

        report.runs["run4"] = RunOutcome(
            name="run4",
            completed=rd1.done,
            value=rd1.result if rd1.done else None,
            rounds_used=rd1.rounds_used,
            acks_to_reader=self._reader_ack_log(system),
        )
        if not rd1.done:
            report.survived_by_blocking = True
            report.blocked_run = "run4"

    # ------------------------------------------------------------------
    # Phase C: run5 -- no write at all; B2 forges σ2.
    # ------------------------------------------------------------------
    def _phase_c(self, report: LowerBoundReport,
                 recorded: Dict[int, List[Any]]) -> None:
        part = self.partition
        system = self._fresh_system()
        for i in part.b2:
            honest = system.kernel.object_automaton(obj(i))
            system.kernel.make_byzantine(
                obj(i), ReplayResponder(honest, recorded.get(i, [])),
                note="forges σ2 (replays post-write acks)")

        self._hold_t2_bidirectional(system, "rd<->T2")
        rd1 = system.invoke_read(0)
        system.kernel.run_to_quiescence(self.max_steps)

        report.runs["run5"] = RunOutcome(
            name="run5",
            completed=rd1.done,
            value=rd1.result if rd1.done else None,
            rounds_used=rd1.rounds_used,
            acks_to_reader=self._reader_ack_log(system),
        )
        if not rd1.done:
            report.survived_by_blocking = True
            report.blocked_run = "run5"

    # ------------------------------------------------------------------
    def _verdict(self, report: LowerBoundReport) -> None:
        v_r = report.runs["run3"].value
        v4 = report.runs["run4"].value
        v5 = report.runs["run5"].value

        def same(a: Any, b: Any) -> bool:
            if isinstance(a, _Bottom) and isinstance(b, _Bottom):
                return True
            return a == b

        if not (same(v4, v_r) and same(v5, v_r)):
            report.indistinguishable = False
            report.notes.append(
                f"reader distinguished the runs (v_R={v_r!r}, v4={v4!r}, "
                f"v5={v5!r}); the protocol is not deterministic in its "
                "received messages")
        # Safety clauses (Section 2.2): run4's read succeeds wr1 and must
        # return v1; run5 has no write and must return ⊥.
        if not same(v4, self.written_value):
            report.violated = True
            report.violation_run = "run4"
        elif not isinstance(v5, _Bottom):
            report.violated = True
            report.violation_run = "run5"


def run_lower_bound(protocol_factory, t: int, b: int,
                    num_objects: Optional[int] = None,
                    written_value: Any = "v1") -> LowerBoundReport:
    """Convenience wrapper: stage the construction at ``S = 2t + 2b``.

    ``num_objects`` may be lowered (the proof covers any ``S <= 2t + 2b``
    with ``S >= 2t + 2``); raising it above ``2t + 2b`` is rejected --
    that is fast-read territory (see :func:`~repro.config.
    fast_read_impossibility_threshold`).
    """
    S = num_objects if num_objects is not None else 2 * t + 2 * b
    config = SystemConfig.with_objects(t=t, b=b, num_objects=S,
                                       num_readers=1)
    driver = LowerBoundDriver(protocol_factory, config, written_value)
    return driver.execute()
