"""Proposition 1 machinery: the mechanized fast-read impossibility proof.

Public surface:

* :func:`run_lower_bound` / :class:`LowerBoundDriver` -- stage the
  five-run indistinguishability construction against any protocol;
* :class:`FastReadProtocol` and its three selection rules -- the victims;
* :func:`figure1` -- ASCII rendering of the paper's Figure 1;
* :class:`BlockPartition`, :class:`ReplayResponder` -- the building blocks.
"""

from .blocks import BlockPartition
from .diagram import figure1
from .driver import (LowerBoundDriver, LowerBoundReport, RunOutcome,
                     STALLED, run_lower_bound)
from .replay import ReplayResponder
from .victims import (ALL_RULES, FastObject, FastReadOperation,
                      FastReadProtocol, FastWriteOperation, RULE_HIGHEST_TS,
                      RULE_MAJORITY, RULE_THRESHOLD)

__all__ = [
    "BlockPartition",
    "figure1",
    "LowerBoundDriver",
    "LowerBoundReport",
    "RunOutcome",
    "STALLED",
    "run_lower_bound",
    "ReplayResponder",
    "FastReadProtocol",
    "FastObject",
    "FastReadOperation",
    "FastWriteOperation",
    "ALL_RULES",
    "RULE_HIGHEST_TS",
    "RULE_MAJORITY",
    "RULE_THRESHOLD",
]
