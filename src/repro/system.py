"""High-level facade: a ready-to-run emulated storage system.

:class:`StorageSystem` wires together a :class:`~repro.protocols.
StorageProtocol`, a :class:`~repro.sim.SimKernel`, persistent client
states and a :class:`~repro.spec.HistoryRecorder`.  It is the public
entry point for the sequential use-cases::

    from repro import SafeStorageProtocol, StorageSystem, SystemConfig

    system = StorageSystem(SafeStorageProtocol(), SystemConfig.optimal(t=2, b=1))
    system.write("v1")
    assert system.read() == "v1"

and it also exposes the non-blocking ``invoke_*`` variants plus the raw
kernel for tests and experiments that need concurrency or adversarial
scheduling.

Every operation method takes an optional ``register_id``: one replica set
(one kernel, one set of base objects) multiplexes arbitrarily many SWMR
registers, each with its own writer/reader client state.  Omitting the id
addresses :data:`~repro.types.DEFAULT_REGISTER`, which is exactly the
pre-multiplexing single-register system.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from .config import SystemConfig
from .protocols import StorageProtocol
from .sim.delay import DelayModel
from .sim.kernel import OperationHandle, SimKernel
from .sim.schedulers import Scheduler
from .spec import History, HistoryRecorder
from .types import DEFAULT_REGISTER, ProcessId, WRITER, reader, writer


class StorageSystem:
    """A protocol instance running on the deterministic simulator."""

    def __init__(self, protocol: StorageProtocol, config: SystemConfig,
                 scheduler: Optional[Scheduler] = None,
                 delay_model: Optional[DelayModel] = None,
                 trace_enabled: bool = True,
                 trace_capacity: Optional[int] = 100_000):
        protocol.validate_config(config)
        self.protocol = protocol
        self.config = config
        self.kernel = SimKernel(config, scheduler=scheduler,
                                delay_model=delay_model,
                                trace_enabled=trace_enabled,
                                trace_capacity=trace_capacity)
        self.objects = protocol.make_objects(config)
        self.kernel.register_objects(self.objects)
        # Per-register client states; the default register's are eagerly
        # created and exposed under the legacy attribute names.
        self._states = protocol.client_states(config)
        self.writer_state = self._states.writer()
        self.reader_states = [
            self._states.reader(reader_index=j)
            for j in range(config.num_readers)
        ]
        self.recorder = HistoryRecorder().attach(self.kernel)

    # -- per-register client states -----------------------------------------
    def writer_state_for(self, register_id: str = DEFAULT_REGISTER,
                         writer_index: int = 0) -> Any:
        return self._states.writer(register_id, writer_index)

    def reader_state_for(self, reader_index: int = 0,
                         register_id: str = DEFAULT_REGISTER) -> Any:
        return self._states.reader(register_id, reader_index)

    def registers(self) -> List[str]:
        """Register ids addressed so far (client-side view)."""
        return self._states.registers()

    # -- blocking convenience API -------------------------------------------
    def write(self, value: Any,
              register_id: str = DEFAULT_REGISTER,
              writer_index: int = 0) -> OperationHandle:
        """WRITE(value) by writer ``writer_index``, run to completion."""
        operation = self.protocol.make_write_to(
            self.writer_state_for(register_id, writer_index), value,
            register_id)
        return self.kernel.run_operation(operation)

    def read(self, reader_index: int = 0,
             register_id: str = DEFAULT_REGISTER) -> Any:
        """READ() by reader ``j``, run to completion; returns the value."""
        handle = self.read_handle(reader_index, register_id)
        return handle.result

    def read_handle(self, reader_index: int = 0,
                    register_id: str = DEFAULT_REGISTER) -> OperationHandle:
        operation = self.protocol.make_read_from(
            self.reader_state_for(reader_index, register_id), register_id)
        return self.kernel.run_operation(operation)

    # -- non-blocking API (concurrent workloads) -------------------------------
    def invoke_write(self, value: Any,
                     register_id: str = DEFAULT_REGISTER,
                     writer_index: int = 0) -> OperationHandle:
        operation = self.protocol.make_write_to(
            self.writer_state_for(register_id, writer_index), value,
            register_id)
        return self.kernel.invoke(operation)

    def invoke_read(self, reader_index: int = 0,
                    register_id: str = DEFAULT_REGISTER) -> OperationHandle:
        operation = self.protocol.make_read_from(
            self.reader_state_for(reader_index, register_id), register_id)
        return self.kernel.invoke(operation)

    def run_until_done(self, *handles: OperationHandle,
                       max_steps: int = 1_000_000) -> None:
        self.kernel.run_until(lambda: all(h.done for h in handles),
                              max_steps=max_steps)

    # -- faults -----------------------------------------------------------------
    def crash_object(self, index: int) -> None:
        from .types import obj
        self.kernel.crash(obj(index))

    def crash_reader(self, reader_index: int) -> None:
        self.kernel.crash(reader(reader_index))

    def crash_writer(self, writer_index: int = 0) -> None:
        self.kernel.crash(writer(writer_index))

    # -- observability -----------------------------------------------------------
    @property
    def history(self) -> History:
        return self.recorder.history

    def metrics(self) -> Dict[str, Any]:
        return self.kernel.metrics()

    def describe(self) -> str:
        return (f"StorageSystem({self.protocol.describe()}; "
                f"{self.config.describe()})")
